//! Supernode detection.
//!
//! A *fundamental supernode* is a maximal strip of consecutive columns
//! `j, j+1, ..., j+k` such that each column is the etree parent of its
//! predecessor and the factor structures nest exactly:
//! `struct(L_{j+1}) = struct(L_j) \ {j+1}`. Within such a strip the
//! diagonal block of L is completely dense and the off-diagonal rows are
//! identical — exactly the "dense triangular block at the top + dense
//! rectangles below" shape the paper's *clusters* exploit (§3.1).
//!
//! The *relaxed* variant tolerates a bounded number of explicit zeros per
//! column when extending a strip, matching the paper's "on occasions,
//! blocks are formed by including small regions that correspond to zeros
//! ... in order to obtain larger blocks".

use crate::SymbolicFactor;
use std::ops::Range;

/// Partition of `0..n` into fundamental supernodes (column strips, in
/// ascending order).
pub fn fundamental_supernodes(factor: &SymbolicFactor) -> Vec<Range<usize>> {
    relaxed_supernodes(factor, 0)
}

/// Supernodes with zero-relaxation: column `j+1` extends the current strip
/// if it is the etree parent of `j` and `struct(L_{j+1})` has at most
/// `max_zeros` rows that are **not** in `struct(L_j) \ {j+1}`. Those extra
/// rows are positions where the earlier strip columns hold explicit zeros
/// that the partitioner will treat as part of the dense block (the paper's
/// "allowing some zeros to be a part of a triangle"). The tolerance is per
/// column extension.
pub fn relaxed_supernodes(factor: &SymbolicFactor, max_zeros: usize) -> Vec<Range<usize>> {
    let n = factor.n();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let mut start = 0usize;
    for j in 0..n - 1 {
        if !extends(factor, j, max_zeros) {
            out.push(start..j + 1);
            start = j + 1;
        }
    }
    out.push(start..n);
    out
}

/// `true` if column `j + 1` may join the supernode ending at column `j`.
fn extends(factor: &SymbolicFactor, j: usize, max_zeros: usize) -> bool {
    let next = j + 1;
    if factor.etree().parent(j) != next {
        return false;
    }
    // With parent(j) = j+1, fill propagation guarantees
    // struct(L_j) \ {j+1} ⊆ struct(L_{j+1}); the *extra* rows of
    // struct(L_{j+1}) are explicit zeros the earlier strip columns would
    // carry inside the merged dense block. Count them.
    let a = factor.col(j);
    let b = factor.col(next);
    // |b \ (a \ {next})| = |b| - (|a| - [next ∈ a]); next ∈ a always
    // (it is the first sub-diagonal entry of column j).
    debug_assert_eq!(a.first(), Some(&next));
    let extras = b.len() + 1 - a.len();
    extras <= max_zeros
}

/// The set of distinct row indices of the factor below a supernode's
/// triangle: the union of `struct(L_j) for j in sn` restricted to rows
/// `>= sn.end`. Because structures grow along the parent chain, this
/// equals the **last** column's structure for fundamental supernodes; for
/// relaxed ones the union is taken explicitly.
pub fn below_rows(factor: &SymbolicFactor, sn: &Range<usize>) -> Vec<usize> {
    let mut rows: Vec<usize> = sn
        .clone()
        .flat_map(|j| factor.col(j).iter().copied().filter(|&i| i >= sn.end))
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfactor_matrix::{gen, SymmetricPattern};

    fn factor(p: &SymmetricPattern) -> SymbolicFactor {
        SymbolicFactor::from_pattern(p)
    }

    #[test]
    fn supernodes_partition_the_columns() {
        let p = gen::lap9(8, 8);
        let f = factor(&p);
        let sns = fundamental_supernodes(&f);
        let mut covered = 0usize;
        for sn in &sns {
            assert_eq!(sn.start, covered, "gap or overlap");
            assert!(sn.end > sn.start);
            covered = sn.end;
        }
        assert_eq!(covered, 64);
    }

    #[test]
    fn dense_matrix_is_one_supernode() {
        let mut e = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                e.push((b, a));
            }
        }
        let f = factor(&SymmetricPattern::from_edges(6, e));
        assert_eq!(fundamental_supernodes(&f), vec![0..6]);
    }

    #[test]
    fn diagonal_matrix_is_all_singletons() {
        let f = factor(&SymmetricPattern::from_edges(4, []));
        assert_eq!(fundamental_supernodes(&f), vec![0..1, 1..2, 2..3, 3..4]);
    }

    #[test]
    fn tridiagonal_supernodes_are_singletons() {
        // Tridiagonal: struct(L_j) = {j+1} and struct(L_{j+1}) = {j+2}.
        // Column j+1 gains row j+2, which column j does not have — a
        // 2-wide strip would carry an explicit zero at (j+2, j), so
        // fundamental supernodes are single columns (except the last pair,
        // where col n-1 is empty).
        let p = SymmetricPattern::from_edges(5, (1..5).map(|i| (i, i - 1)));
        let f = factor(&p);
        let sns = fundamental_supernodes(&f);
        assert_eq!(sns, vec![0..1, 1..2, 2..3, 3..5]);
        // With one zero of relaxation every extension is allowed.
        assert_eq!(relaxed_supernodes(&f, 1), vec![0..5]);
    }

    #[test]
    fn supernode_columns_nest() {
        let p = gen::lap9(10, 10);
        let perm = spfactor_order::order(&p, spfactor_order::Ordering::paper_default());
        let f = factor(&p.permute(&perm));
        for sn in fundamental_supernodes(&f) {
            for j in sn.start..sn.end - 1 {
                // struct(L_j) \ {j+1} == struct(L_{j+1}) up to rows < end:
                // check the defining subset property.
                let a: Vec<usize> = f.col(j).iter().copied().filter(|&r| r != j + 1).collect();
                let b = f.col(j + 1);
                for r in &a {
                    assert!(b.contains(r), "row {r} lost between cols {j} and {}", j + 1);
                }
                assert_eq!(a.len(), b.len(), "structure must shrink by exactly 1");
            }
        }
    }

    #[test]
    fn relaxation_merges_at_least_as_much() {
        let p = gen::lap9(12, 12);
        let perm = spfactor_order::order(&p, spfactor_order::Ordering::paper_default());
        let f = factor(&p.permute(&perm));
        let strict = fundamental_supernodes(&f).len();
        let relaxed = relaxed_supernodes(&f, 2).len();
        assert!(relaxed <= strict, "relaxation cannot split supernodes");
    }

    #[test]
    fn relaxed_tolerates_one_zero() {
        // A: edges (1,0), (2,0), (4,0), (2,1), (3,1), (4,2) =>
        // L: col0 = {1,2,4}; col1 = A{2,3} ∪ col0\{1} = {2,3,4};
        // col2 = A{4} ∪ col1\{2} = {3,4}; col3 = {4}; col4 = {}.
        // col1 gains row 3 (absent from col0): a 2-wide strip {0,1} would
        // carry an explicit zero at (3, 0), so strict supernodes split 0|1
        // while cols 1..5 nest exactly ({2,3,4} -> {3,4} -> {4} -> {}).
        let p = SymmetricPattern::from_edges(5, [(1, 0), (2, 0), (4, 0), (2, 1), (3, 1), (4, 2)]);
        let f = factor(&p);
        assert_eq!(f.col(0), &[1, 2, 4]);
        assert_eq!(f.col(1), &[2, 3, 4]);
        assert_eq!(f.col(2), &[3, 4]);
        let strict = fundamental_supernodes(&f);
        assert_eq!(strict, vec![0..1, 1..5]);
        // One zero of tolerance merges everything into a single cluster.
        assert_eq!(relaxed_supernodes(&f, 1), vec![0..5]);
    }

    #[test]
    fn below_rows_of_supernode() {
        let p = gen::lap9(6, 6);
        let perm = spfactor_order::order(&p, spfactor_order::Ordering::paper_default());
        let f = factor(&p.permute(&perm));
        for sn in fundamental_supernodes(&f) {
            let rows = below_rows(&f, &sn);
            // Sorted, unique, all >= sn.end.
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
            assert!(rows.iter().all(|&r| r >= sn.end));
            // For fundamental supernodes this equals the last column's
            // structure.
            let last: Vec<usize> = f.col(sn.end - 1).to_vec();
            assert_eq!(rows, last);
        }
    }
}
