//! Symbolic Cholesky factorization.
//!
//! Step 2 of the paper's four-step direct solution process: given the
//! (already ordered) structure of A, determine the zero/nonzero structure
//! of the Cholesky factor L. The partitioner (crate `spfactor-partition`)
//! consumes this structure — "the partitioning starts with the zero-nonzero
//! structure of the filled sparse matrix obtained after the symbolic
//! factorization phase" (§3).
//!
//! * [`SymbolicFactor`] — the factor structure, its elimination tree, fill
//!   and operation counts;
//! * [`supernode`] — fundamental and relaxed supernode detection, the basis
//!   of the paper's *cluster* identification.

pub mod factor;
pub mod ops;
pub mod supernode;

pub use factor::{col_counts, SymbolicFactor};
pub use ops::{for_each_scaling, for_each_update, UpdateOp};
pub use supernode::{fundamental_supernodes, relaxed_supernodes};
