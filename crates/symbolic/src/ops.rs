//! Element-level update operations (the paper's Figure 1).
//!
//! The basic dependency of Cholesky factorization: computing `L(i,j)`
//! requires the pair `L(i,k)`, `L(j,k)` from every column `k < j` in which
//! both rows are nonzero — `L(i,j) -= L(i,k) * L(j,k)` — followed by one
//! scaling by the diagonal `L(j,j)`. This module enumerates exactly those
//! operations from the symbolic factor, which is what the machine model
//! uses to account work and data traffic for *any* block-to-processor
//! assignment.

use crate::SymbolicFactor;

/// One outer-product update: target element `(i, j)` (with `i >= j > k`)
/// is updated by the source pair `(i, k)` and `(j, k)`. When `i == j` the
/// pair degenerates to the single source element `(j, k)` squared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateOp {
    /// Target row.
    pub i: usize,
    /// Target column (`i >= j`).
    pub j: usize,
    /// Source column (`k < j`).
    pub k: usize,
}

/// Calls `f` for every update operation of the factorization, grouped by
/// source column `k` ascending; within a column, targets are produced in
/// ascending `(j, i)` order. Cost: one call per multiply-add pair,
/// `O(Σ_k c_k²)`.
pub fn for_each_update(factor: &SymbolicFactor, mut f: impl FnMut(UpdateOp)) {
    for k in 0..factor.n() {
        let rows = factor.col(k);
        for (b, &j) in rows.iter().enumerate() {
            for &i in &rows[b..] {
                f(UpdateOp { i, j, k });
            }
        }
    }
}

/// Calls `f(i, j)` for every scaling operation: each strict-lower factor
/// element `(i, j)` is scaled once by the diagonal element `(j, j)`.
pub fn for_each_scaling(factor: &SymbolicFactor, mut f: impl FnMut(usize, usize)) {
    for j in 0..factor.n() {
        for &i in factor.col(j) {
            f(i, j);
        }
    }
}

/// Total work under the paper's cost model (2 units per update pair, 1 per
/// diagonal scaling), by direct enumeration. Equals
/// [`SymbolicFactor::paper_work`], which computes it in closed form.
pub fn total_work(factor: &SymbolicFactor) -> usize {
    let mut w = 0usize;
    for_each_update(factor, |_| w += 2);
    for_each_scaling(factor, |_, _| w += 1);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfactor_matrix::{gen, SymmetricPattern};

    #[test]
    fn updates_of_single_dense_column() {
        // A: column 0 dense with rows {1, 2}: updates targets (1,1), (2,1),
        // (2,2) from column 0; after elimination col1 = {2}: update (2,2)
        // from column 1.
        let p = SymmetricPattern::from_edges(3, [(1, 0), (2, 0)]);
        let f = SymbolicFactor::from_pattern(&p);
        let mut ops = Vec::new();
        for_each_update(&f, |op| ops.push((op.k, op.j, op.i)));
        assert_eq!(ops, vec![(0, 1, 1), (0, 1, 2), (0, 2, 2), (1, 2, 2)]);
    }

    #[test]
    fn update_invariants_hold() {
        let p = gen::lap9(6, 6);
        let f = SymbolicFactor::from_pattern(&p);
        for_each_update(&f, |op| {
            assert!(op.k < op.j, "source column must precede target");
            assert!(op.j <= op.i, "target must be in the lower triangle");
            // Sources and target are factor nonzeros.
            assert!(f.contains(op.j, op.k) || op.j == op.k);
            assert!(f.contains(op.i, op.k) || op.i == op.k);
            assert!(op.i == op.j || f.contains(op.i, op.j));
        });
    }

    #[test]
    fn total_work_matches_closed_form() {
        for p in [
            gen::lap9(7, 7),
            gen::grid5(5, 8),
            gen::power_network(50, 10, 4),
        ] {
            let f = SymbolicFactor::from_pattern(&p);
            assert_eq!(total_work(&f), f.paper_work());
        }
    }

    #[test]
    fn scaling_count_equals_strict_lower_nnz() {
        let p = gen::lap9(5, 5);
        let f = SymbolicFactor::from_pattern(&p);
        let mut count = 0;
        for_each_scaling(&f, |i, j| {
            assert!(i > j);
            count += 1;
        });
        assert_eq!(count, f.nnz_strict_lower());
    }

    #[test]
    fn empty_factor_has_no_ops() {
        let f = SymbolicFactor::from_pattern(&SymmetricPattern::from_edges(2, []));
        assert_eq!(total_work(&f), 0);
    }
}
