//! Structure of the Cholesky factor L.

use spfactor_matrix::SymmetricPattern;
use spfactor_order::etree::{rows_of, EliminationTree, NONE};
use spfactor_trace::Recorder;

/// Strict-lower column counts of the Cholesky factor of `pattern`,
/// computed from the elimination tree alone — no factor structure is
/// materialized.
///
/// Row-subtree counting (George/Liu): the nonzero columns of row `i` of
/// L are exactly the nodes of the subtree paths from each `k` with
/// `A(i, k) ≠ 0`, `k < i`, up to (excluding) `i`. Walking each path
/// until the first node already visited for row `i` touches every factor
/// entry once: `O(nnz(L))` time, three length-`n` scratch arrays.
pub fn col_counts(pattern: &SymmetricPattern, etree: &EliminationTree) -> Vec<usize> {
    let n = pattern.n();
    let mut count = vec![0usize; n];
    let mut visited = vec![usize::MAX; n];
    let (row_ptr, row_idx) = rows_of(pattern);
    for i in 0..n {
        for &k in &row_idx[row_ptr[i]..row_ptr[i + 1]] {
            let mut j = k;
            while j != i && j != NONE && visited[j] != i {
                count[j] += 1;
                visited[j] = i;
                j = etree.parent(j);
            }
        }
    }
    count
}

/// The symbolic Cholesky factor of a (pre-ordered) symmetric matrix:
/// the strict-lower-triangle structure of L, plus the elimination tree it
/// was derived from. The diagonal of L is implicit (always nonzero).
#[derive(Clone, Debug)]
pub struct SymbolicFactor {
    n: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    etree: EliminationTree,
    /// Strict-lower nonzeros of A (for fill accounting).
    nnz_a_strict: usize,
}

impl SymbolicFactor {
    /// Computes the factor structure of `pattern` in its current ordering.
    ///
    /// Column merging up the elimination tree: `struct(L_j)` is the union
    /// of the below-diagonal structure of `A_j` with `struct(L_c) \ {j}`
    /// for every etree child `c` of `j`. The column counts are known in
    /// closed form from the etree first ([`col_counts`]), so the CSC
    /// arrays are allocated exactly once at their final size and each
    /// column is merged in place — no per-column set is materialized.
    /// `O(nnz(L))` amortized plus the per-column sorts.
    pub fn from_pattern(pattern: &SymmetricPattern) -> Self {
        let n = pattern.n();
        let etree = EliminationTree::from_pattern(pattern);
        let counts = col_counts(pattern, &etree);
        let mut colptr = Vec::with_capacity(n + 1);
        colptr.push(0usize);
        for j in 0..n {
            colptr.push(colptr[j] + counts[j]);
        }
        let mut rowidx = vec![0usize; colptr[n]];
        let children = etree.children();
        let mut marker = vec![usize::MAX; n];
        for j in 0..n {
            let start = colptr[j];
            let mut cursor = start;
            // A's column structure (rows > j).
            for &i in pattern.col(j) {
                if marker[i] != j {
                    marker[i] = j;
                    rowidx[cursor] = i;
                    cursor += 1;
                }
            }
            // Merge children factor columns (minus row j itself); the
            // children sit strictly earlier in `rowidx`, so plain index
            // copies suffice.
            for &c in children.of(j) {
                for r in colptr[c]..colptr[c + 1] {
                    let i = rowidx[r];
                    if i != j && marker[i] != j {
                        debug_assert!(i > j, "child structure must lie below parent");
                        marker[i] = j;
                        rowidx[cursor] = i;
                        cursor += 1;
                    }
                }
            }
            debug_assert_eq!(cursor, colptr[j + 1], "closed-form count off for col {j}");
            rowidx[start..cursor].sort_unstable();
        }
        SymbolicFactor {
            n,
            colptr,
            rowidx,
            etree,
            nnz_a_strict: pattern.nnz_strict_lower(),
        }
    }

    /// [`from_pattern`](Self::from_pattern) with instrumentation: times
    /// the construction under the span `symbolic.from_pattern` and records
    /// the factor's headline statistics as `symbolic.*` gauges — `n`,
    /// `nnz_lower`, `fill_in`, `flops`, `paper_work` and the fundamental
    /// supernode count (see `docs/METRICS.md`).
    pub fn from_pattern_traced(pattern: &SymmetricPattern, recorder: &Recorder) -> Self {
        let factor = recorder.time("symbolic.from_pattern", || Self::from_pattern(pattern));
        recorder.gauge("symbolic.n", factor.n() as f64);
        recorder.gauge("symbolic.nnz_lower", factor.nnz_lower() as f64);
        recorder.gauge("symbolic.fill_in", factor.fill_in() as f64);
        recorder.gauge("symbolic.flops", factor.flop_count() as f64);
        recorder.gauge("symbolic.paper_work", factor.paper_work() as f64);
        recorder.gauge(
            "symbolic.fundamental_supernodes",
            crate::supernode::fundamental_supernodes(&factor).len() as f64,
        );
        factor
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Strict-lower row indices of factor column `j`, ascending.
    #[inline]
    pub fn col(&self, j: usize) -> &[usize] {
        &self.rowidx[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Number of strict-lower entries in column `j` (excluding diagonal).
    #[inline]
    pub fn col_count(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Strict-lower nonzeros of L.
    #[inline]
    pub fn nnz_strict_lower(&self) -> usize {
        self.rowidx.len()
    }

    /// Nonzeros of L including the diagonal — the count the paper's
    /// Table 1 reports as "No. of non-zeros in factor".
    #[inline]
    pub fn nnz_lower(&self) -> usize {
        self.rowidx.len() + self.n
    }

    /// Fill-in: factor entries that are structural zeros of A.
    #[inline]
    pub fn fill_in(&self) -> usize {
        self.rowidx.len() - self.nnz_a_strict
    }

    /// The elimination tree.
    pub fn etree(&self) -> &EliminationTree {
        &self.etree
    }

    /// `true` if `(i, j)`, `i > j`, is a factor nonzero.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.col(j).binary_search(&i).is_ok()
    }

    /// Total number of factor entries including the implicit diagonal:
    /// `n + nnz_strict_lower()`. Entry ids (see [`Self::entry_id`]) are
    /// dense in `0..num_entries()`.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.n + self.rowidx.len()
    }

    /// Dense id of factor entry `(i, j)` with `i >= j`: diagonal entries
    /// map to `j` (`0..n`), strict-lower entries to `n +` their position
    /// in the column-compressed structure. Returns `None` for structural
    /// zeros.
    pub fn entry_id(&self, i: usize, j: usize) -> Option<usize> {
        if i == j {
            return (j < self.n).then_some(j);
        }
        let base = self.colptr[j];
        self.col(j)
            .binary_search(&i)
            .ok()
            .map(|off| self.n + base + off)
    }

    /// Inverse of [`Self::entry_id`]: the `(row, col)` of a dense entry id.
    pub fn entry_coords(&self, id: usize) -> (usize, usize) {
        if id < self.n {
            return (id, id);
        }
        let pos = id - self.n;
        debug_assert!(pos < self.rowidx.len());
        let j = self.colptr.partition_point(|&p| p <= pos) - 1;
        (self.rowidx[pos], j)
    }

    /// A stable 64-bit fingerprint of the factor structure (dimension,
    /// column pointers, row indices) — FNV-1a, deterministic across runs
    /// and platforms. Two symbolic factors with the same fingerprint have
    /// the same structure, so a cached factor can be pinned against a
    /// freshly computed one without a full comparison (the serve layer's
    /// artifact integrity check).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(self.n as u64);
        for &p in &self.colptr {
            fold(p as u64);
        }
        for &i in &self.rowidx {
            fold(i as u64);
        }
        h
    }

    /// The factor structure as a [`SymmetricPattern`] (strict lower).
    pub fn to_pattern(&self) -> SymmetricPattern {
        SymmetricPattern::from_parts(self.n, self.colptr.clone(), self.rowidx.clone())
            .expect("factor columns are sorted, strict, in-bounds")
    }

    /// Number of multiply-add pairs in the numeric factorization,
    /// `Σ_j c_j (c_j + 3) / 2` with `c_j` the strict column count — the
    /// standard Cholesky operation count (excluding square roots).
    pub fn flop_count(&self) -> usize {
        (0..self.n)
            .map(|j| {
                let c = self.col_count(j);
                c * (c + 3) / 2
            })
            .sum()
    }

    /// Work under the **paper's cost model** (§4): each update of an
    /// element by a pair of off-diagonal elements costs 2 units; each
    /// update/scale by a diagonal element costs 1 unit.
    ///
    /// For column `k` of L with `c_k` strict-lower entries: its outer
    /// product updates `c_k (c_k + 1) / 2` elements at 2 units each, and
    /// scaling column `k` by its diagonal costs `c_k` units.
    pub fn paper_work(&self) -> usize {
        (0..self.n)
            .map(|j| {
                let c = self.col_count(j);
                c * (c + 1) + c
            })
            .sum()
    }

    /// Per-column depth in the elimination tree (roots at 0) — the
    /// column-level critical path is `max + 1`.
    pub fn depths(&self) -> Vec<usize> {
        self.etree.depths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfactor_matrix::gen;
    use spfactor_order::{mmd::multiple_minimum_degree, Ordering};

    /// 4-cycle: A has edges (1,0), (2,0), (3,1), (3,2); eliminating 0
    /// fills (2,1)? No: neighbours of 0 are {1, 2}, so fill (2,1). Then
    /// struct: col0 = {1,2}, col1 = {2,3}, col2 = {3}, col3 = {}.
    #[test]
    fn fingerprint_tracks_structure() {
        let p = gen::lap9(5, 5);
        let a = SymbolicFactor::from_pattern(&p);
        let b = SymbolicFactor::from_pattern(&p);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = SymbolicFactor::from_pattern(&gen::lap9(5, 6));
        assert_ne!(a.fingerprint(), other.fingerprint());
    }

    #[test]
    fn factor_of_square_cycle() {
        let p = SymmetricPattern::from_edges(4, [(1, 0), (2, 0), (3, 1), (3, 2)]);
        let f = SymbolicFactor::from_pattern(&p);
        assert_eq!(f.col(0), &[1, 2]);
        assert_eq!(f.col(1), &[2, 3]);
        assert_eq!(f.col(2), &[3]);
        assert_eq!(f.col(3), &[] as &[usize]);
        assert_eq!(f.fill_in(), 1);
        assert_eq!(f.nnz_lower(), 4 + 5);
    }

    #[test]
    fn factor_of_tridiagonal_has_no_fill() {
        let p = SymmetricPattern::from_edges(6, (1..6).map(|i| (i, i - 1)));
        let f = SymbolicFactor::from_pattern(&p);
        assert_eq!(f.fill_in(), 0);
        assert_eq!(f.nnz_strict_lower(), 5);
    }

    #[test]
    fn factor_of_dense_matrix() {
        let mut e = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                e.push((b, a));
            }
        }
        let p = SymmetricPattern::from_edges(5, e);
        let f = SymbolicFactor::from_pattern(&p);
        assert_eq!(f.nnz_strict_lower(), 10); // full lower triangle
        assert_eq!(f.fill_in(), 0);
        // flops: sum c(c+3)/2 for c = 4,3,2,1,0 => 14+9+5+2+0 = 30
        assert_eq!(f.flop_count(), 30);
    }

    #[test]
    fn closed_form_counts_match_materialized_structure() {
        for p in [
            gen::lap9(7, 7),
            gen::grid5(6, 5),
            gen::power_network(50, 10, 4),
        ] {
            let f = SymbolicFactor::from_pattern(&p);
            let counts = col_counts(&p, f.etree());
            let expect: Vec<usize> = (0..p.n()).map(|j| f.col_count(j)).collect();
            assert_eq!(counts, expect);
        }
    }

    #[test]
    fn fill_matches_naive_elimination() {
        // Cross-validate the etree-based symbolic factorization against
        // naive elimination on several structures.
        for p in [
            gen::lap9(6, 6),
            gen::grid5(7, 4),
            gen::power_network(40, 8, 2),
            gen::frame_shell(4, 6),
        ] {
            let f = SymbolicFactor::from_pattern(&p);
            let naive = spfactor_order::mmd::elimination_fill(&p);
            assert_eq!(f.fill_in(), naive, "fill mismatch");
        }
    }

    #[test]
    fn factor_contains_a_entries() {
        let p = gen::lap9(5, 5);
        let f = SymbolicFactor::from_pattern(&p);
        for (i, j) in p.iter_entries() {
            assert!(f.contains(i, j), "A entry ({i},{j}) missing from L");
        }
    }

    #[test]
    fn first_subdiagonal_is_etree_parent() {
        let p = gen::lap9(6, 6);
        let perm = multiple_minimum_degree(&p, 0);
        let pp = p.permute(&perm);
        let f = SymbolicFactor::from_pattern(&pp);
        for j in 0..pp.n() {
            match f.col(j).first() {
                Some(&i) => assert_eq!(f.etree().parent(j), i),
                None => assert_eq!(f.etree().parent(j), spfactor_order::etree::NONE),
            }
        }
    }

    #[test]
    fn lap30_factor_size_matches_paper_regime() {
        // Table 1: LAP30 factor has 16697 nonzeros under GENMMD. Our MMD
        // tie-breaks differently; require the same regime (within 35%).
        let p = gen::lap9(30, 30);
        let perm = spfactor_order::order(&p, Ordering::paper_default());
        let f = SymbolicFactor::from_pattern(&p.permute(&perm));
        let got = f.nnz_lower() as f64;
        let rel = (got - 16697.0).abs() / 16697.0;
        assert!(rel < 0.35, "LAP30 nnz(L) = {got} vs paper 16697");
    }

    #[test]
    fn paper_work_of_single_column() {
        // One column with c strict entries: updates c(c+1)/2 elements at 2
        // units + c scalings at 1 unit.
        let p = SymmetricPattern::from_edges(4, [(1, 0), (2, 0), (3, 0)]);
        let f = SymbolicFactor::from_pattern(&p);
        // col0 = {1,2,3}: c=3 -> 3*4 + 3 = 15. Eliminating col 0 fills
        // columns 1 and 2 completely: col1 = {2,3} -> 2*3+2 = 8,
        // col2 = {3} -> 1*2+1 = 3, col3 = 0.
        assert_eq!(f.paper_work(), 15 + 8 + 3);
    }

    #[test]
    fn empty_factor() {
        let f = SymbolicFactor::from_pattern(&SymmetricPattern::from_edges(0, []));
        assert_eq!(f.n(), 0);
        assert_eq!(f.nnz_lower(), 0);
        assert_eq!(f.flop_count(), 0);
    }

    #[test]
    fn entry_ids_are_dense_and_invertible() {
        let p = gen::lap9(5, 5);
        let f = SymbolicFactor::from_pattern(&p);
        let mut seen = vec![false; f.num_entries()];
        for j in 0..f.n() {
            let d = f.entry_id(j, j).unwrap();
            assert!(!seen[d]);
            seen[d] = true;
            assert_eq!(f.entry_coords(d), (j, j));
            for &i in f.col(j) {
                let id = f.entry_id(i, j).unwrap();
                assert!(!seen[id]);
                seen[id] = true;
                assert_eq!(f.entry_coords(id), (i, j));
            }
        }
        assert!(seen.iter().all(|&s| s), "entry ids must be dense");
    }

    #[test]
    fn entry_id_of_structural_zero_is_none() {
        let p = SymmetricPattern::from_edges(3, [(1, 0)]);
        let f = SymbolicFactor::from_pattern(&p);
        assert!(f.entry_id(2, 0).is_none());
        assert!(f.entry_id(2, 1).is_none());
        assert!(f.entry_id(1, 0).is_some());
    }

    #[test]
    fn to_pattern_round_trips() {
        let p = gen::lap9(4, 4);
        let f = SymbolicFactor::from_pattern(&p);
        let fp = f.to_pattern();
        assert_eq!(fp.nnz_strict_lower(), f.nnz_strict_lower());
        for j in 0..p.n() {
            assert_eq!(fp.col(j), f.col(j));
        }
    }
}
