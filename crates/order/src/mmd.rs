//! Liu's multiple minimum degree ordering (reference \[10\] of the paper).
//!
//! A from-scratch implementation of the quotient-graph minimum degree
//! algorithm with the three classic enhancements of Liu's MMD:
//!
//! * **multiple elimination** — in each pass, all pairwise-independent
//!   variables whose external degree is within `delta` of the minimum are
//!   eliminated before any degrees are recomputed;
//! * **indistinguishable-variable merging** — variables with identical
//!   quotient-graph adjacency are merged into supervariables and numbered
//!   consecutively;
//! * **element absorption** — when a variable is eliminated, the elements
//!   adjacent to it are absorbed into the newly created element.
//!
//! The exact tie-breaking differs from Liu's Fortran `GENMMD`, so fill
//! counts differ from the paper's by a few percent; `EXPERIMENTS.md`
//! records the deltas.

use spfactor_matrix::{Permutation, SymmetricPattern};
use spfactor_trace::Recorder;

/// Sentinel degree for dead variables.
const DEAD: usize = usize::MAX;

/// Quotient-graph state for the elimination process.
struct QuotientGraph {
    /// Uneliminated, unmerged variable adjacency (may contain stale ids;
    /// cleaned lazily against `state`).
    adj_vars: Vec<Vec<usize>>,
    /// Element ids adjacent to each variable (may contain absorbed
    /// elements; cleaned lazily).
    adj_elems: Vec<Vec<usize>>,
    /// Boundary variable list of each element (stale entries cleaned
    /// lazily). Indexed by element id.
    elem_vars: Vec<Vec<usize>>,
    /// `true` while the element is live (not absorbed).
    elem_live: Vec<bool>,
    /// Variable state: `Live`, merged into a representative, or eliminated.
    state: Vec<VarState>,
    /// Supervariable weight (number of original variables represented).
    weight: Vec<usize>,
    /// Original variables merged into this representative (excluding the
    /// representative itself), in merge order.
    members: Vec<Vec<usize>>,
    /// External degree of each live variable (total weight of distinct
    /// reachable variables), `DEAD` for dead ones.
    degree: Vec<usize>,
    /// Work marker for set operations.
    marker: Vec<usize>,
    marker_val: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VarState {
    Live,
    Merged,
    Eliminated,
}

impl QuotientGraph {
    fn new(pattern: &SymmetricPattern) -> Self {
        let n = pattern.n();
        let g = pattern.to_graph();
        let adj_vars: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
        let degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        QuotientGraph {
            adj_vars,
            adj_elems: vec![Vec::new(); n],
            elem_vars: Vec::new(),
            elem_live: Vec::new(),
            state: vec![VarState::Live; n],
            weight: vec![1; n],
            members: vec![Vec::new(); n],
            degree,
            marker: vec![0; n],
            marker_val: 0,
        }
    }

    #[inline]
    fn live(&self, v: usize) -> bool {
        self.state[v] == VarState::Live
    }

    fn next_marker(&mut self) -> usize {
        self.marker_val += 1;
        self.marker_val
    }

    /// Cleans `adj_vars[v]` (drops dead/merged ids) and `adj_elems[v]`
    /// (drops absorbed elements), deduplicating both.
    fn clean(&mut self, v: usize) {
        let m = self.next_marker();
        let mut vars = std::mem::take(&mut self.adj_vars[v]);
        vars.retain(|&u| {
            if u != v && self.state[u] == VarState::Live && self.marker[u] != m {
                self.marker[u] = m;
                true
            } else {
                false
            }
        });
        self.adj_vars[v] = vars;
        let mut elems = std::mem::take(&mut self.adj_elems[v]);
        elems.sort_unstable();
        elems.dedup();
        elems.retain(|&e| self.elem_live[e]);
        self.adj_elems[v] = elems;
    }

    /// The set of live variables reachable from `v` in one quotient step
    /// (direct variable neighbours plus boundaries of adjacent elements),
    /// excluding `v` itself.
    fn reach(&mut self, v: usize) -> Vec<usize> {
        self.clean(v);
        let m = self.next_marker();
        self.marker[v] = m;
        let mut out = Vec::new();
        for &u in &self.adj_vars[v] {
            if self.marker[u] != m {
                // adj_vars[v] was just cleaned: u is live and distinct.
                out.push(u);
            }
        }
        for &u in &out {
            self.marker[u] = m;
        }
        // Collect element ids first to appease the borrow checker.
        let elems = self.adj_elems[v].clone();
        for e in elems {
            // Clean the element boundary in place while scanning.
            let mut boundary = std::mem::take(&mut self.elem_vars[e]);
            boundary.retain(|&u| self.state[u] == VarState::Live);
            for &u in &boundary {
                if u != v && self.marker[u] != m {
                    self.marker[u] = m;
                    out.push(u);
                }
            }
            self.elem_vars[e] = boundary;
        }
        out
    }

    /// Eliminates variable `v`, creating a new element. Returns the new
    /// element's id and boundary.
    fn eliminate(&mut self, v: usize) -> (usize, Vec<usize>) {
        debug_assert!(self.live(v));
        let boundary = self.reach(v);
        // Absorb the elements adjacent to v.
        for &e in &self.adj_elems[v] {
            self.elem_live[e] = false;
        }
        let e = self.elem_vars.len();
        self.elem_vars.push(boundary.clone());
        self.elem_live.push(true);
        self.state[v] = VarState::Eliminated;
        self.degree[v] = DEAD;
        for &u in &boundary {
            self.adj_elems[u].push(e);
        }
        (e, boundary)
    }

    /// Recomputes the external degree of `v`: total weight of the distinct
    /// live variables reachable from `v`.
    fn update_degree(&mut self, v: usize) {
        let r = self.reach(v);
        self.degree[v] = r.iter().map(|&u| self.weight[u]).sum();
    }

    /// Recomputes an *upper bound* on the external degree of `v` without
    /// deduplicating across element boundaries — the Amestoy–Davis–Duff
    /// approximate-degree idea: `d̂(v) = |A_v| + Σ_e |L_e|` over the
    /// adjacent elements. One order of magnitude cheaper per update than
    /// the exact scan on dense-ish quotient graphs.
    fn update_degree_approx(&mut self, v: usize) {
        self.clean(v);
        let mut d: usize = self.adj_vars[v].iter().map(|&u| self.weight[u]).sum();
        let elems = self.adj_elems[v].clone();
        for e in elems {
            let mut boundary = std::mem::take(&mut self.elem_vars[e]);
            boundary.retain(|&u| self.state[u] == VarState::Live);
            d += boundary
                .iter()
                .filter(|&&u| u != v)
                .map(|&u| self.weight[u])
                .sum::<usize>();
            self.elem_vars[e] = boundary;
        }
        self.degree[v] = d;
    }

    /// Merges indistinguishable variables among `candidates`: variables
    /// whose cleaned quotient adjacency (variables ∪ self, elements) are
    /// identical. Returns the representatives that absorbed someone.
    fn merge_indistinguishable(&mut self, candidates: &[usize]) -> Vec<usize> {
        use std::collections::HashMap;
        // Signature: sorted cleaned adjacency including self.
        let mut sigs: HashMap<(Vec<usize>, Vec<usize>), usize> = HashMap::new();
        let mut absorbed_into = Vec::new();
        for &v in candidates {
            if !self.live(v) {
                continue;
            }
            self.clean(v);
            let mut vars = self.adj_vars[v].clone();
            vars.push(v);
            vars.sort_unstable();
            let elems = self.adj_elems[v].clone(); // sorted by clean()
            match sigs.entry((vars, elems)) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(v);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let rep = *slot.get();
                    // Merge v into rep.
                    self.state[v] = VarState::Merged;
                    self.degree[v] = DEAD;
                    self.weight[rep] += self.weight[v];
                    let mut sub = std::mem::take(&mut self.members[v]);
                    self.members[rep].push(v);
                    self.members[rep].append(&mut sub);
                    absorbed_into.push(rep);
                }
            }
        }
        absorbed_into.sort_unstable();
        absorbed_into.dedup();
        absorbed_into
    }
}

/// Computes Liu's multiple minimum degree ordering of `pattern`.
///
/// `delta` is the multiple-elimination tolerance: in each pass every
/// independent variable with external degree `<= mindeg + delta` is
/// eliminated before degrees are updated. `delta = 0` gives the classic
/// MMD behaviour used by the paper.
///
/// Returns `perm[new] = old`.
pub fn multiple_minimum_degree(pattern: &SymmetricPattern, delta: usize) -> Permutation {
    minimum_degree_impl(pattern, delta, false, None)
}

/// [`multiple_minimum_degree`] with instrumentation: records the number
/// of elimination passes, supervariable eliminations, degree updates and
/// indistinguishable-variable merges under `order.mmd.*` (see
/// `docs/METRICS.md`).
pub fn multiple_minimum_degree_traced(
    pattern: &SymmetricPattern,
    delta: usize,
    recorder: &Recorder,
) -> Permutation {
    minimum_degree_impl(pattern, delta, false, Some(recorder))
}

/// Approximate minimum degree: the same quotient-graph elimination as
/// [`multiple_minimum_degree`] but driven by the cheap upper-bound degree
/// `d̂(v) = |A_v| + Σ_e |L_e|` instead of the exact external degree.
///
/// This is the *coarse* bound only (production AMD refines it by
/// subtracting overlaps with the most recent element); it trades
/// noticeable fill quality — 10–90% more fill than MMD on the paper's
/// test set, see the `orderings` bench — for a much cheaper degree
/// update. Included as a comparison point; the production ordering
/// remains [`multiple_minimum_degree`].
pub fn approximate_minimum_degree(pattern: &SymmetricPattern) -> Permutation {
    minimum_degree_impl(pattern, 0, true, None)
}

/// [`approximate_minimum_degree`] with instrumentation; records the same
/// `order.mmd.*` counters as [`multiple_minimum_degree_traced`].
pub fn approximate_minimum_degree_traced(
    pattern: &SymmetricPattern,
    recorder: &Recorder,
) -> Permutation {
    minimum_degree_impl(pattern, 0, true, Some(recorder))
}

fn minimum_degree_impl(
    pattern: &SymmetricPattern,
    delta: usize,
    approx: bool,
    recorder: Option<&Recorder>,
) -> Permutation {
    let n = pattern.n();
    let mut q = QuotientGraph::new(pattern);
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut eliminated = 0usize;
    // Tallied in locals and recorded once at the end, keeping the
    // recorder's mutex entirely out of the elimination loop.
    let mut passes = 0u64;
    let mut eliminations = 0u64;
    let mut degree_updates = 0u64;
    let mut merges = 0u64;

    while eliminated < n {
        passes += 1;
        // Minimum degree among live variables.
        let mindeg = (0..n)
            .filter(|&v| q.live(v))
            .map(|v| q.degree[v])
            .min()
            .expect("live variables remain");
        let threshold = mindeg.saturating_add(delta);
        // Candidates in ascending (degree, index) order for determinism.
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&v| q.live(v) && q.degree[v] <= threshold)
            .collect();
        candidates.sort_unstable_by_key(|&v| (q.degree[v], v));

        // Multiple elimination: skip candidates adjacent to a variable
        // already eliminated in this pass (their degree is stale).
        let pass_mark = q.next_marker();
        let mut touched: Vec<usize> = Vec::new();
        for v in candidates {
            if !q.live(v) || q.marker[v] == pass_mark {
                continue;
            }
            let (_e, boundary) = q.eliminate(v);
            eliminations += 1;
            // Emit v and everything merged into it, supervariable members
            // eliminated consecutively (paper's "mass" numbering).
            order.push(v);
            eliminated += 1 + q.members[v].len();
            let members = std::mem::take(&mut q.members[v]);
            for u in members {
                order.push(u);
            }
            for &u in &boundary {
                q.marker[u] = pass_mark;
                touched.push(u);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched.retain(|&u| q.live(u));

        // Merge indistinguishable variables among the touched set, then
        // recompute degrees. Variables merged away here (live before, dead
        // after) are exactly the pass's supervariable absorptions.
        let live_before = touched.iter().filter(|&&u| q.live(u)).count() as u64;
        q.merge_indistinguishable(&touched);
        let mut live_after = 0u64;
        for &u in &touched {
            if q.live(u) {
                live_after += 1;
                degree_updates += 1;
                if approx {
                    q.update_degree_approx(u);
                } else {
                    q.update_degree(u);
                }
            }
        }
        merges += live_before - live_after;
    }

    if let Some(rec) = recorder {
        rec.incr("order.mmd.passes", passes);
        rec.incr("order.mmd.eliminations", eliminations);
        rec.incr("order.mmd.degree_updates", degree_updates);
        rec.incr("order.mmd.supervariable_merges", merges);
    }
    debug_assert_eq!(order.len(), n);
    Permutation::from_vec(order).expect("MMD eliminates every variable exactly once")
}

/// Counts the fill-in (number of strict-lower factor entries that are zero
/// in A) produced by eliminating `pattern` in its natural order, via naive
/// symbolic elimination. Quadratic; used for testing and small studies.
pub fn elimination_fill(pattern: &SymmetricPattern) -> usize {
    let n = pattern.n();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    for (i, j) in pattern.iter_entries() {
        adj[i].insert(j);
        adj[j].insert(i);
    }
    let mut fill = 0usize;
    for v in 0..n {
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| u > v).collect();
        for (a_idx, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[a_idx + 1..] {
                if adj[a].insert(b) {
                    adj[b].insert(a);
                    fill += 1;
                }
            }
        }
    }
    fill
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfactor_matrix::gen;

    fn fill_under(pattern: &SymmetricPattern, perm: &Permutation) -> usize {
        elimination_fill(&pattern.permute(perm))
    }

    #[test]
    fn mmd_is_a_valid_permutation() {
        let p = gen::lap9(8, 8);
        let perm = multiple_minimum_degree(&p, 0);
        assert_eq!(perm.len(), 64);
    }

    #[test]
    fn mmd_is_deterministic() {
        let p = gen::lap9(7, 7);
        assert_eq!(
            multiple_minimum_degree(&p, 0),
            multiple_minimum_degree(&p, 0)
        );
    }

    #[test]
    fn mmd_beats_natural_order_on_grids() {
        let p = gen::lap9(10, 10);
        let natural = elimination_fill(&p);
        let mmd = fill_under(&p, &multiple_minimum_degree(&p, 0));
        // The natural (band) order is already reasonable on a small grid;
        // MMD must still clearly beat it. (On LAP30 the gap widens to ~40%,
        // see mmd_fill_competitive_on_lap30_scale.)
        assert!(
            mmd < natural * 3 / 4,
            "MMD fill {mmd} not well below natural fill {natural}"
        );
    }

    #[test]
    fn mmd_on_tree_produces_zero_fill() {
        // Any minimum-degree ordering of a tree is a perfect elimination
        // ordering: leaves always have degree 1.
        let p = gen::power_network(60, 0, 3);
        let fill = fill_under(&p, &multiple_minimum_degree(&p, 0));
        assert_eq!(fill, 0, "trees must factor with no fill under MD");
    }

    #[test]
    fn mmd_on_path_and_star() {
        // Path: already perfect elimination; star: centre last.
        let path = SymmetricPattern::from_edges(10, (1..10).map(|i| (i, i - 1)));
        assert_eq!(fill_under(&path, &multiple_minimum_degree(&path, 0)), 0);
        let star = SymmetricPattern::from_edges(8, (1..8).map(|i| (i, 0)));
        let perm = multiple_minimum_degree(&star, 0);
        // Centre (vertex 0) must be eliminated last.
        assert_eq!(perm.old_of(7), 0);
    }

    #[test]
    fn mmd_on_complete_graph_any_order_zero_choice() {
        let k5 = SymmetricPattern::from_edges(5, {
            let mut e = Vec::new();
            for a in 0..5 {
                for b in (a + 1)..5 {
                    e.push((b, a));
                }
            }
            e
        });
        let perm = multiple_minimum_degree(&k5, 0);
        assert_eq!(perm.len(), 5);
        assert_eq!(fill_under(&k5, &perm), 0); // already chordal/complete
    }

    #[test]
    fn delta_variants_remain_valid_and_close() {
        let p = gen::lap9(9, 9);
        let f0 = fill_under(&p, &multiple_minimum_degree(&p, 0));
        let f2 = fill_under(&p, &multiple_minimum_degree(&p, 2));
        // Larger delta may add some fill but must stay in the same regime.
        assert!(f2 <= f0 * 2 + 16, "delta=2 fill {f2} vs delta=0 fill {f0}");
    }

    #[test]
    fn mmd_handles_disconnected_graphs() {
        let p = SymmetricPattern::from_edges(7, [(1, 0), (2, 1), (5, 4), (6, 5)]);
        let perm = multiple_minimum_degree(&p, 0);
        assert_eq!(perm.len(), 7);
    }

    #[test]
    fn mmd_handles_empty_and_tiny() {
        assert_eq!(
            multiple_minimum_degree(&SymmetricPattern::from_edges(0, []), 0).len(),
            0
        );
        assert_eq!(
            multiple_minimum_degree(&SymmetricPattern::from_edges(1, []), 0).len(),
            1
        );
        let two = SymmetricPattern::from_edges(2, [(1, 0)]);
        assert_eq!(multiple_minimum_degree(&two, 0).len(), 2);
    }

    #[test]
    fn elimination_fill_of_cycle() {
        // A 5-cycle ordered naturally: eliminating 0 connects 1-4, etc.
        // Known fill for cycle C_n in natural order: n - 3 new edges... for
        // C_5: eliminating 0 adds (1,4); eliminating 1 adds (2,4); then
        // chordal. Fill = 2.
        let c5 = SymmetricPattern::from_edges(5, [(1, 0), (2, 1), (3, 2), (4, 3), (4, 0)]);
        assert_eq!(elimination_fill(&c5), 2);
    }

    #[test]
    fn amd_is_valid_and_competitive() {
        let p = gen::lap9(9, 9);
        let amd = approximate_minimum_degree(&p);
        assert_eq!(amd.len(), 81);
        let f_amd = fill_under(&p, &amd);
        let f_mmd = fill_under(&p, &multiple_minimum_degree(&p, 0));
        // The approximate degree may lose some fill quality but must stay
        // in the same regime.
        assert!(
            (f_amd as f64) < 1.6 * f_mmd as f64,
            "AMD fill {f_amd} vs MMD fill {f_mmd}"
        );
    }

    #[test]
    fn amd_on_tree_has_zero_fill() {
        let p = gen::power_network(60, 0, 5);
        assert_eq!(fill_under(&p, &approximate_minimum_degree(&p)), 0);
    }

    #[test]
    fn amd_is_deterministic() {
        let p = gen::lap9(7, 7);
        assert_eq!(
            approximate_minimum_degree(&p),
            approximate_minimum_degree(&p)
        );
    }

    #[test]
    fn mmd_fill_competitive_on_lap30_scale() {
        // Fill for LAP30 in the paper (Table 1): 16697 - 4322 = 12375 fill
        // entries under GENMMD. Our MMD must land in the same regime
        // (within 35%) — it will not match exactly due to tie-breaking.
        let p = gen::lap9(30, 30);
        let fill = fill_under(&p, &multiple_minimum_degree(&p, 0));
        let paper = 12375.0;
        let rel = (fill as f64 - paper).abs() / paper;
        assert!(
            rel < 0.35,
            "LAP30 MMD fill {fill} vs paper {paper} (rel {rel:.2})"
        );
    }
}
