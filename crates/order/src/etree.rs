//! Elimination trees and postorderings.
//!
//! The elimination tree of a symmetric matrix A (with respect to an
//! ordering) is the fundamental structure of sparse Cholesky: the parent of
//! column `j` is the row index of the first sub-diagonal nonzero of column
//! `j` of the factor L. It is computed here directly from the structure of
//! A with Liu's path-compression algorithm — no factor needed.

use spfactor_matrix::SymmetricPattern;

/// Sentinel for "no parent" (tree roots).
pub const NONE: usize = usize::MAX;

/// An elimination tree: `parent[j]` is the parent column of `j`, or
/// [`NONE`] for roots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EliminationTree {
    parent: Vec<usize>,
}

/// Children lists of an [`EliminationTree`] in one flat CSR layout:
/// node `j`'s children are `idx[ptr[j]..ptr[j + 1]]`, ascending. Two
/// allocations total, versus one `Vec` per node for the nested layout —
/// the difference between tens of milliseconds and near-free on a
/// million-column tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Children {
    ptr: Vec<usize>,
    idx: Vec<usize>,
}

impl Children {
    /// Children of node `j`, ascending.
    #[inline]
    pub fn of(&self, j: usize) -> &[usize] {
        &self.idx[self.ptr[j]..self.ptr[j + 1]]
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.ptr.len() - 1
    }
}

/// The strict-lower pattern regrouped by *row* into one flat CSR buffer:
/// `(row_ptr, row_idx)` with row `i`'s columns at
/// `row_idx[row_ptr[i]..row_ptr[i + 1]]`, ascending.
pub fn rows_of(pattern: &SymmetricPattern) -> (Vec<usize>, Vec<usize>) {
    let n = pattern.n();
    let mut row_ptr = vec![0usize; n + 1];
    for (i, _) in pattern.iter_entries() {
        row_ptr[i + 1] += 1;
    }
    for i in 0..n {
        row_ptr[i + 1] += row_ptr[i];
    }
    let mut row_idx = vec![0usize; row_ptr[n]];
    let mut cursor = row_ptr.clone();
    for (i, j) in pattern.iter_entries() {
        // Ascending j per row because iter_entries walks columns in order.
        row_idx[cursor[i]] = j;
        cursor[i] += 1;
    }
    (row_ptr, row_idx)
}

impl EliminationTree {
    /// Computes the elimination tree of `pattern` (in its current
    /// ordering) via Liu's algorithm with path compression; `O(nnz · α)`.
    pub fn from_pattern(pattern: &SymmetricPattern) -> Self {
        let n = pattern.n();
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        // For row i ascending, climb with path compression from every k < i
        // with A(i, k) != 0. The stored lower triangle gives entries (i, j)
        // with i > j per column j; regroup them by row first, into one flat
        // CSR buffer (a million-column tree would pay dearly for n Vecs).
        let (row_ptr, row_idx) = rows_of(pattern);
        for i in 0..n {
            for &k in &row_idx[row_ptr[i]..row_ptr[i + 1]] {
                let mut r = k;
                loop {
                    if ancestor[r] == NONE || ancestor[r] == i {
                        break;
                    }
                    let next = ancestor[r];
                    ancestor[r] = i;
                    r = next;
                }
                if ancestor[r] == NONE {
                    ancestor[r] = i;
                    parent[r] = i;
                }
            }
        }
        EliminationTree { parent }
    }

    /// Number of columns.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Parent of column `j` ([`NONE`] for roots).
    #[inline]
    pub fn parent(&self, j: usize) -> usize {
        self.parent[j]
    }

    /// The raw parent array.
    pub fn parents(&self) -> &[usize] {
        &self.parent
    }

    /// Roots of the forest (one per connected component).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.n()).filter(|&j| self.parent[j] == NONE).collect()
    }

    /// Children of every node in one flat CSR structure (two arrays
    /// total, regardless of `n`); each node's child list is ascending.
    pub fn children(&self) -> Children {
        let n = self.n();
        let mut ptr = vec![0usize; n + 1];
        for j in 0..n {
            if self.parent[j] != NONE {
                ptr[self.parent[j] + 1] += 1;
            }
        }
        for v in 0..n {
            ptr[v + 1] += ptr[v];
        }
        let mut idx = vec![0usize; ptr[n]];
        let mut cursor = ptr.clone();
        // Ascending j keeps each child list ascending.
        for j in 0..n {
            if self.parent[j] != NONE {
                let p = self.parent[j];
                idx[cursor[p]] = j;
                cursor[p] += 1;
            }
        }
        Children { ptr, idx }
    }

    /// A postordering of the forest: `post[k]` is the k-th column visited.
    /// Children are visited in ascending order, so the postorder is
    /// deterministic. Allocates only the CSR children structure, the
    /// result, and one DFS stack.
    pub fn postorder(&self) -> Vec<usize> {
        let n = self.n();
        let children = self.children();
        let mut post = Vec::with_capacity(n);
        // Iterative DFS; (node, absolute cursor into the child CSR).
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for root in self.roots() {
            stack.push((root, children.ptr[root]));
            while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
                if *cursor < children.ptr[v + 1] {
                    let c = children.idx[*cursor];
                    *cursor += 1;
                    stack.push((c, children.ptr[c]));
                } else {
                    post.push(v);
                    stack.pop();
                }
            }
        }
        post
    }

    /// Depth of each node (roots have depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let n = self.n();
        let mut depth = vec![usize::MAX; n];
        for j in 0..n {
            // Climb until a known depth or a root, then unwind.
            let mut path = Vec::new();
            let mut v = j;
            while depth[v] == usize::MAX {
                path.push(v);
                if self.parent[v] == NONE {
                    depth[v] = 0;
                    break;
                }
                v = self.parent[v];
            }
            let mut d = depth[v];
            for &u in path.iter().rev() {
                if depth[u] == usize::MAX {
                    d += 1;
                    depth[u] = d;
                } else {
                    d = depth[u];
                }
            }
        }
        depth
    }

    /// Height of the forest: `1 + max depth`, or 0 when empty. A proxy for
    /// the critical-path length of the column-level task graph.
    pub fn height(&self) -> usize {
        if self.n() == 0 {
            0
        } else {
            1 + self.depths().into_iter().max().unwrap()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfactor_matrix::gen;

    /// Tridiagonal matrix: the etree is a path 0 -> 1 -> ... -> n-1.
    #[test]
    fn etree_of_tridiagonal_is_path() {
        let p = SymmetricPattern::from_edges(5, (1..5).map(|i| (i, i - 1)));
        let t = EliminationTree::from_pattern(&p);
        assert_eq!(t.parents(), &[1, 2, 3, 4, NONE]);
        assert_eq!(t.roots(), vec![4]);
        assert_eq!(t.height(), 5);
    }

    /// An arrow matrix pointing at the last column: every column's first
    /// sub-diagonal nonzero is row n-1, so all parents are n-1.
    #[test]
    fn etree_of_arrow_is_star() {
        let p = SymmetricPattern::from_edges(5, (0..4).map(|j| (4, j)));
        let t = EliminationTree::from_pattern(&p);
        assert_eq!(t.parents(), &[4, 4, 4, 4, NONE]);
        assert_eq!(t.height(), 2);
    }

    /// Known example (George & Liu style): a 2x2 grid.
    /// Edges: (1,0), (2,0), (3,1), (3,2). L fill: none under natural order
    /// except (3, ...): parent(0)=1 (first nnz below diag in col 0 is row 1),
    /// col1 gets fill at row 2 (from (2,0),(1,0)) => parent(1)=2... verify
    /// against hand computation: etree parents = [1, 2, 3, NONE].
    #[test]
    fn etree_of_square_cycle() {
        let p = SymmetricPattern::from_edges(4, [(1, 0), (2, 0), (3, 1), (3, 2)]);
        let t = EliminationTree::from_pattern(&p);
        assert_eq!(t.parents(), &[1, 2, 3, NONE]);
    }

    #[test]
    fn etree_of_disconnected_has_multiple_roots() {
        let p = SymmetricPattern::from_edges(4, [(1, 0), (3, 2)]);
        let t = EliminationTree::from_pattern(&p);
        assert_eq!(t.roots(), vec![1, 3]);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let p = gen::lap9(5, 5);
        let t = EliminationTree::from_pattern(&p);
        let post = t.postorder();
        assert_eq!(post.len(), 25);
        let mut pos = [0usize; 25];
        for (k, &v) in post.iter().enumerate() {
            pos[v] = k;
        }
        for j in 0..25 {
            if t.parent(j) != NONE {
                assert!(pos[j] < pos[t.parent(j)], "child {j} after parent");
            }
        }
    }

    #[test]
    fn postorder_is_permutation() {
        let p = gen::grid5(4, 4);
        let t = EliminationTree::from_pattern(&p);
        let mut post = t.postorder();
        post.sort_unstable();
        assert_eq!(post, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn depths_consistent_with_parents() {
        let p = gen::lap9(4, 4);
        let t = EliminationTree::from_pattern(&p);
        let d = t.depths();
        for j in 0..16 {
            match t.parent(j) {
                NONE => assert_eq!(d[j], 0),
                par => assert_eq!(d[j], d[par] + 1),
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let t = EliminationTree::from_pattern(&SymmetricPattern::from_edges(0, []));
        assert_eq!(t.height(), 0);
        assert!(t.postorder().is_empty());
        let t = EliminationTree::from_pattern(&SymmetricPattern::from_edges(1, []));
        assert_eq!(t.parents(), &[NONE]);
        assert_eq!(t.height(), 1);
    }
}
