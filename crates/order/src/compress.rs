//! Compressed-graph minimum degree: the `OrderEngine::Compressed` path.
//!
//! Two ideas stack here, both exploiting structure the per-variable
//! oracle in [`crate::mmd`] ignores:
//!
//! * **Indistinguishable-node compression** (Ashcraft's compressed
//!   graphs): variables with identical *closed* neighborhoods — common
//!   in FEM discretizations with several degrees of freedom per mesh
//!   node and in dense sub-blocks — are detected up front by an
//!   adjacency hash plus exact verification and collapsed into one
//!   weighted supervariable. Minimum degree then runs on the quotient
//!   graph, which is 2–10× smaller on such patterns, and the
//!   permutation is expanded back by numbering each supervariable's
//!   members consecutively (exactly the "mass elimination" the
//!   algorithm would have performed one variable at a time).
//! * **Bucketed candidate selection and batched boundary cleaning**:
//!   the oracle rescans all `n` variables twice per elimination pass to
//!   find the minimum degree and the candidate set (`O(n·passes)`
//!   overall — the superlinear term that dominates large grids), and
//!   every degree update re-cleans and clones element boundaries. This
//!   driver keeps lazily-invalidated degree buckets so a pass touches
//!   only the candidates it eliminates, cleans each element boundary
//!   once per pass, and computes degrees with read-only marker scans —
//!   no allocation on the update path.
//!
//! The elimination logic itself — external degrees, multiple
//! elimination with tolerance `delta`, indistinguishable-variable
//! merging, element absorption — mirrors [`crate::mmd`] decision for
//! decision, so on a graph with no compressible nodes the compressed
//! engine reproduces the oracle's permutation bit for bit (asserted in
//! tests). Where compression does fire, the permutation differs but the
//! fill stays in the same regime; `tests/order_engine.rs` pins the
//! bound and `EXPERIMENTS.md` records measured ratios.

use spfactor_matrix::{Permutation, SymmetricPattern};

/// Variable liveness inside the quotient graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Live,
    Merged,
    Eliminated,
}

/// The result of indistinguishable-node detection on a pattern: the
/// quotient (compressed) pattern, the supervariable weights, and the
/// member lists needed to expand a compressed ordering back to the
/// original variables.
#[derive(Clone, Debug)]
pub struct GraphCompression {
    /// Quotient pattern over supervariables (strict lower triangle).
    pub compressed: SymmetricPattern,
    /// Number of original variables each supervariable represents.
    pub weights: Vec<usize>,
    /// CSR member lists: supervariable `s` represents original
    /// variables `member_idx[member_ptr[s]..member_ptr[s+1]]`, ascending.
    member_ptr: Vec<usize>,
    member_idx: Vec<usize>,
}

impl GraphCompression {
    /// Detects indistinguishable variables of `pattern` — identical
    /// closed neighborhoods `N[v] = {v} ∪ adj(v)` — by hashing each
    /// sorted closed list and verifying candidate pairs exactly, then
    /// builds the quotient pattern. Deterministic: supervariables are
    /// numbered by their smallest member, ascending.
    pub fn analyze(pattern: &SymmetricPattern) -> Self {
        let n = pattern.n();
        let g = pattern.to_graph();

        // Closed neighborhoods as one flat CSR, each list sorted.
        let mut closed_ptr = Vec::with_capacity(n + 1);
        closed_ptr.push(0usize);
        let mut closed_idx: Vec<usize> = Vec::with_capacity(2 * pattern.nnz_strict_lower() + n);
        for v in 0..n {
            let nbrs = g.neighbors(v);
            // neighbors are sorted; splice v into position.
            let split = nbrs.partition_point(|&u| u < v);
            closed_idx.extend_from_slice(&nbrs[..split]);
            closed_idx.push(v);
            closed_idx.extend_from_slice(&nbrs[split..]);
            closed_ptr.push(closed_idx.len());
        }
        let closed = |v: usize| &closed_idx[closed_ptr[v]..closed_ptr[v + 1]];

        // Hash each closed list; group by hash, verify exactly.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let hash_of = |list: &[usize]| {
            let mut h = OFFSET;
            for &u in list {
                for byte in (u as u64).to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(PRIME);
                }
            }
            h
        };
        let mut groups_by_hash: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        // rep_of[v] = supervariable id of v; ids assigned in ascending
        // order of the group's first (smallest) member.
        let mut rep_of = vec![usize::MAX; n];
        let mut member_lists: Vec<Vec<usize>> = Vec::new();
        for (v, slot) in rep_of.iter_mut().enumerate() {
            let h = hash_of(closed(v));
            let bucket = groups_by_hash.entry(h).or_default();
            let mut found = None;
            for &s in bucket.iter() {
                let rep = member_lists[s][0];
                if closed(rep) == closed(v) {
                    found = Some(s);
                    break;
                }
            }
            match found {
                Some(s) => {
                    *slot = s;
                    member_lists[s].push(v);
                }
                None => {
                    let s = member_lists.len();
                    bucket.push(s);
                    member_lists.push(vec![v]);
                    *slot = s;
                }
            }
        }
        let nc = member_lists.len();

        // Quotient edges between distinct supervariables, deduplicated.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (i, j) in pattern.iter_entries() {
            let (a, b) = (rep_of[i], rep_of[j]);
            if a != b {
                edges.push((a.max(b), a.min(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let compressed = SymmetricPattern::from_edges(nc, edges);

        let weights: Vec<usize> = member_lists.iter().map(|m| m.len()).collect();
        let mut member_ptr = Vec::with_capacity(nc + 1);
        member_ptr.push(0usize);
        let mut member_idx = Vec::with_capacity(n);
        for m in &member_lists {
            member_idx.extend_from_slice(m); // ascending: pushed in v order
            member_ptr.push(member_idx.len());
        }
        GraphCompression {
            compressed,
            weights,
            member_ptr,
            member_idx,
        }
    }

    /// Number of original variables.
    pub fn n_original(&self) -> usize {
        self.member_idx.len()
    }

    /// Number of supervariables in the quotient graph.
    pub fn n_compressed(&self) -> usize {
        self.weights.len()
    }

    /// Compression ratio `n / n_compressed` (1.0 when nothing merged;
    /// 1.0 for the empty pattern).
    pub fn ratio(&self) -> f64 {
        if self.n_compressed() == 0 {
            1.0
        } else {
            self.n_original() as f64 / self.n_compressed() as f64
        }
    }

    /// Original variables the supervariable `s` represents, ascending.
    pub fn members(&self, s: usize) -> &[usize] {
        &self.member_idx[self.member_ptr[s]..self.member_ptr[s + 1]]
    }

    /// Expands an elimination order of the quotient graph into a
    /// permutation of the original variables: each supervariable's
    /// members are numbered consecutively, ascending.
    pub fn expand(&self, order_c: &[usize]) -> Permutation {
        debug_assert_eq!(order_c.len(), self.n_compressed());
        let mut out = Vec::with_capacity(self.n_original());
        for &s in order_c {
            out.extend_from_slice(self.members(s));
        }
        Permutation::from_vec(out).expect("expansion covers every original variable once")
    }
}

/// Work counters of one compressed minimum-degree run, recorded by the
/// traced entry points under the `order.mmd.*` names.
#[derive(Clone, Copy, Debug, Default)]
pub struct MdCounters {
    /// Elimination passes (rounds of multiple elimination).
    pub passes: u64,
    /// Supervariable eliminations.
    pub eliminations: u64,
    /// Degree recomputations.
    pub degree_updates: u64,
    /// Indistinguishable-variable merges performed *during* elimination
    /// (on top of the up-front compression).
    pub merges: u64,
}

/// Quotient-graph state, structurally the same as the oracle's in
/// [`crate::mmd`] but with weighted initial degrees and batched,
/// allocation-free maintenance.
struct Quotient {
    adj_vars: Vec<Vec<usize>>,
    adj_elems: Vec<Vec<usize>>,
    elem_vars: Vec<Vec<usize>>,
    elem_live: Vec<bool>,
    state: Vec<State>,
    weight: Vec<usize>,
    members: Vec<Vec<usize>>,
    degree: Vec<usize>,
    marker: Vec<usize>,
    marker_val: usize,
}

impl Quotient {
    fn new(pattern: &SymmetricPattern, weights: &[usize]) -> Self {
        let n = pattern.n();
        let g = pattern.to_graph();
        let adj_vars: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
        let degree: Vec<usize> = (0..n)
            .map(|v| g.neighbors(v).iter().map(|&u| weights[u]).sum())
            .collect();
        Quotient {
            adj_vars,
            adj_elems: vec![Vec::new(); n],
            elem_vars: Vec::new(),
            elem_live: Vec::new(),
            state: vec![State::Live; n],
            weight: weights.to_vec(),
            members: vec![Vec::new(); n],
            degree,
            marker: vec![0; n],
            marker_val: 0,
        }
    }

    #[inline]
    fn live(&self, v: usize) -> bool {
        self.state[v] == State::Live
    }

    fn next_marker(&mut self) -> usize {
        self.marker_val += 1;
        self.marker_val
    }

    /// Drops dead/merged variables and absorbed elements from `v`'s
    /// adjacency, deduplicating both lists (elements end up sorted).
    fn clean(&mut self, v: usize) {
        let m = self.next_marker();
        let mut vars = std::mem::take(&mut self.adj_vars[v]);
        vars.retain(|&u| {
            if u != v && self.state[u] == State::Live && self.marker[u] != m {
                self.marker[u] = m;
                true
            } else {
                false
            }
        });
        self.adj_vars[v] = vars;
        let mut elems = std::mem::take(&mut self.adj_elems[v]);
        elems.sort_unstable();
        elems.dedup();
        elems.retain(|&e| self.elem_live[e]);
        self.adj_elems[v] = elems;
    }

    /// Eliminates `v`: forms the new element from `v`'s reach, absorbs
    /// the elements adjacent to `v`, and returns the boundary.
    fn eliminate(&mut self, v: usize) -> Vec<usize> {
        debug_assert!(self.live(v));
        self.clean(v);
        let m = self.next_marker();
        self.marker[v] = m;
        let mut boundary: Vec<usize> = Vec::new();
        for k in 0..self.adj_vars[v].len() {
            let u = self.adj_vars[v][k];
            // clean() deduplicated and filtered: u is live and distinct.
            self.marker[u] = m;
            boundary.push(u);
        }
        for k in 0..self.adj_elems[v].len() {
            let e = self.adj_elems[v][k];
            for t in 0..self.elem_vars[e].len() {
                let u = self.elem_vars[e][t];
                if u != v && self.state[u] == State::Live && self.marker[u] != m {
                    self.marker[u] = m;
                    boundary.push(u);
                }
            }
            self.elem_live[e] = false; // absorbed into the new element
        }
        let e = self.elem_vars.len();
        self.elem_vars.push(boundary.clone());
        self.elem_live.push(true);
        self.state[v] = State::Eliminated;
        for &u in &boundary {
            self.adj_elems[u].push(e);
        }
        boundary
    }

    /// Exact external degree of `v` by a read-only marker scan; assumes
    /// `clean(v)` ran and adjacent element boundaries hold live
    /// variables only (the per-pass batch clean).
    fn exact_degree(&mut self, v: usize) -> usize {
        let m = self.next_marker();
        self.marker[v] = m;
        let mut d = 0usize;
        for k in 0..self.adj_vars[v].len() {
            let u = self.adj_vars[v][k];
            // Merges since the last clean() may have left dead entries.
            if self.state[u] == State::Live && self.marker[u] != m {
                self.marker[u] = m;
                d += self.weight[u];
            }
        }
        for k in 0..self.adj_elems[v].len() {
            let e = self.adj_elems[v][k];
            for t in 0..self.elem_vars[e].len() {
                let u = self.elem_vars[e][t];
                if self.state[u] == State::Live && self.marker[u] != m {
                    self.marker[u] = m;
                    d += self.weight[u];
                }
            }
        }
        d
    }

    /// Amestoy–Davis–Duff upper-bound degree: no deduplication across
    /// element boundaries. Same preconditions as [`Self::exact_degree`].
    fn approx_degree(&mut self, v: usize) -> usize {
        let mut d: usize = self.adj_vars[v]
            .iter()
            .filter(|&&u| self.state[u] == State::Live)
            .map(|&u| self.weight[u])
            .sum();
        for k in 0..self.adj_elems[v].len() {
            let e = self.adj_elems[v][k];
            for t in 0..self.elem_vars[e].len() {
                let u = self.elem_vars[e][t];
                if u != v && self.state[u] == State::Live {
                    d += self.weight[u];
                }
            }
        }
        d
    }

    /// Merges indistinguishable variables among `candidates` (identical
    /// cleaned quotient adjacency), with a cheap screen in front of the
    /// oracle's exact comparison: each candidate gets a *commutative*
    /// hash of its cleaned closed adjacency (no clone, no sort), and
    /// only candidates sharing a hash pay for the exact signature. The
    /// outcome matches the oracle's sequential merge: signature equality
    /// is invariant under merges performed earlier in the same pass
    /// (a merged variable appears in one candidate's pre-merge closed
    /// adjacency iff it appears in its twin's, because indistinguishable
    /// variables share closed neighborhoods), so grouping by the
    /// pre-merge hash and resolving each group exactly — in ascending
    /// candidate order, so the representative is the smallest member,
    /// as in the oracle — produces the same merges.
    ///
    /// Also cleans every live candidate as a side effect (hash needs the
    /// cleaned lists), which the caller's degree scans rely on.
    fn merge_indistinguishable(&mut self, candidates: &[usize]) {
        fn mix(mut x: u64) -> u64 {
            // splitmix64 finalizer.
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        let mut sigs: Vec<(u64, usize)> = Vec::with_capacity(candidates.len());
        for &v in candidates {
            if !self.live(v) {
                continue;
            }
            self.clean(v);
            let mut hv = mix(v as u64);
            for &u in &self.adj_vars[v] {
                hv = hv.wrapping_add(mix(u as u64));
            }
            let mut he = mix(self.adj_elems[v].len() as u64 ^ 0x9e37_79b9_7f4a_7c15);
            for &e in &self.adj_elems[v] {
                he = he.wrapping_add(mix(e as u64 ^ 0x9e37_79b9_7f4a_7c15));
            }
            sigs.push((mix(hv ^ he.rotate_left(32)), v));
        }
        sigs.sort_unstable();
        let mut i = 0;
        while i < sigs.len() {
            let mut j = i + 1;
            while j < sigs.len() && sigs[j].0 == sigs[i].0 {
                j += 1;
            }
            if j - i >= 2 {
                self.merge_group(i, j, &sigs);
            }
            i = j;
        }
    }

    /// Oracle-style exact merge over `sigs[lo..hi]` (one hash group,
    /// ascending candidate order because the sort tie-breaks on the id).
    fn merge_group(&mut self, lo: usize, hi: usize, sigs: &[(u64, usize)]) {
        use std::collections::hash_map::Entry;
        use std::collections::HashMap;
        let mut exact: HashMap<(Vec<usize>, Vec<usize>), usize> = HashMap::new();
        for &(_, v) in &sigs[lo..hi] {
            if !self.live(v) {
                continue;
            }
            self.clean(v);
            let mut vars = self.adj_vars[v].clone();
            vars.push(v);
            vars.sort_unstable();
            let elems = self.adj_elems[v].clone(); // sorted by clean()
            match exact.entry((vars, elems)) {
                Entry::Vacant(slot) => {
                    slot.insert(v);
                }
                Entry::Occupied(slot) => {
                    let rep = *slot.get();
                    self.state[v] = State::Merged;
                    self.weight[rep] += self.weight[v];
                    let mut sub = std::mem::take(&mut self.members[v]);
                    self.members[rep].push(v);
                    self.members[rep].append(&mut sub);
                }
            }
        }
    }
}

/// Lazily-invalidated degree buckets: `bucket[d]` over-approximates the
/// live variables of degree `d`; entries are validated (and the bucket
/// compacted, sorted, deduplicated) when the bucket is scanned.
struct DegreeBuckets {
    bucket: Vec<Vec<usize>>,
    cur_min: usize,
}

impl DegreeBuckets {
    fn new(max_degree: usize) -> Self {
        DegreeBuckets {
            bucket: vec![Vec::new(); max_degree + 1],
            cur_min: 0,
        }
    }

    #[inline]
    fn push(&mut self, v: usize, d: usize) {
        self.bucket[d].push(v);
        if d < self.cur_min {
            self.cur_min = d;
        }
    }

    /// Compacts `bucket[d]` to currently-valid entries in ascending
    /// variable order.
    fn compact(&mut self, d: usize, q: &Quotient) {
        let b = &mut self.bucket[d];
        b.retain(|&v| q.live(v) && q.degree[v] == d);
        b.sort_unstable();
        b.dedup();
    }

    /// Advances to the smallest non-empty valid degree. Panics if no
    /// live variable remains (callers loop while some do).
    fn min_degree(&mut self, q: &Quotient) -> usize {
        while self.cur_min < self.bucket.len() {
            self.compact(self.cur_min, q);
            if !self.bucket[self.cur_min].is_empty() {
                return self.cur_min;
            }
            self.cur_min += 1;
        }
        unreachable!("degree buckets exhausted while live variables remain")
    }
}

/// Runs weighted multiple minimum degree (or its approximate-degree
/// variant) on `pattern` with initial supervariable `weights`, returning
/// the elimination order of the (compressed) variables and the work
/// counters. Decision-for-decision equivalent to the oracle in
/// [`crate::mmd`] when all weights are 1.
pub(crate) fn weighted_min_degree(
    pattern: &SymmetricPattern,
    weights: &[usize],
    delta: usize,
    approx: bool,
) -> (Vec<usize>, MdCounters) {
    let n = pattern.n();
    let mut counters = MdCounters::default();
    if n == 0 {
        return (Vec::new(), counters);
    }
    let total_weight: usize = weights.iter().sum();
    let mut q = Quotient::new(pattern, weights);
    let mut buckets = DegreeBuckets::new(total_weight);
    for v in 0..n {
        buckets.push(v, q.degree[v]);
    }

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut eliminated = 0usize;
    let mut candidates: Vec<usize> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut pass_elems: Vec<usize> = Vec::new();
    // Degree-update groups keyed by packed element pair; element ids fit
    // u32 comfortably (at most one element per elimination).
    const NO_ELEM: u64 = u32::MAX as u64;
    let mut upd_groups: Vec<(u64, usize)> = Vec::new();

    while eliminated < n {
        counters.passes += 1;
        let mindeg = buckets.min_degree(&q);
        let hi = mindeg.saturating_add(delta).min(total_weight);
        candidates.clear();
        candidates.extend_from_slice(&buckets.bucket[mindeg]);
        for d in (mindeg + 1)..=hi {
            buckets.compact(d, &q);
            candidates.extend_from_slice(&buckets.bucket[d]);
        }

        // Multiple elimination: skip candidates whose degree went stale
        // (adjacent to an earlier elimination of this pass).
        let pass_mark = q.next_marker();
        touched.clear();
        for &v in &candidates {
            if !q.live(v) || q.marker[v] == pass_mark {
                continue;
            }
            let boundary = q.eliminate(v);
            counters.eliminations += 1;
            order.push(v);
            eliminated += 1 + q.members[v].len();
            let members = std::mem::take(&mut q.members[v]);
            order.extend(members);
            for &u in &boundary {
                q.marker[u] = pass_mark;
                touched.push(u);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched.retain(|&u| q.live(u));

        // Merge indistinguishable variables among the touched set (the
        // merge cleans every live candidate itself), then clean each
        // adjacent element boundary exactly once so the degree scans
        // below are read-only. Variables merged away *during* the pass
        // linger in their neighbours' adjacency until the next clean;
        // the degree scans skip them by state.
        let live_before = touched.len() as u64;
        q.merge_indistinguishable(&touched);
        pass_elems.clear();
        let mut live_after = 0u64;
        for &u in touched.iter() {
            if q.live(u) {
                live_after += 1;
                pass_elems.extend_from_slice(&q.adj_elems[u]);
            }
        }
        counters.merges += live_before - live_after;
        pass_elems.sort_unstable();
        pass_elems.dedup();
        for &e in &pass_elems {
            let mut boundary = std::mem::take(&mut q.elem_vars[e]);
            boundary.retain(|&u| q.state[u] == State::Live);
            q.elem_vars[e] = boundary;
        }

        if approx {
            for &u in &touched {
                if !q.live(u) {
                    continue;
                }
                counters.degree_updates += 1;
                let d = q.approx_degree(u);
                q.degree[u] = d;
                buckets.push(u, d);
            }
        } else {
            // Exact degrees grouped by adjacent-element signature: most
            // updated variables sit on the boundary of one or two
            // elements, and variables sharing the same pair share the
            // same boundary union — mark and weigh that union once per
            // group, then each member pays only a scan of its direct
            // variable neighbours instead of re-walking every boundary.
            upd_groups.clear();
            for &u in &touched {
                if !q.live(u) {
                    continue;
                }
                counters.degree_updates += 1;
                let elems = &q.adj_elems[u];
                debug_assert!(elems.iter().all(|&e| e < NO_ELEM as usize));
                match *elems.as_slice() {
                    [] => {
                        // adj_vars[u] is clean (merge pass) up to
                        // same-pass merges, which the state check skips.
                        let mut d = 0usize;
                        for idx in 0..q.adj_vars[u].len() {
                            let a = q.adj_vars[u][idx];
                            if q.live(a) {
                                d += q.weight[a];
                            }
                        }
                        q.degree[u] = d;
                        buckets.push(u, d);
                    }
                    [e] => upd_groups.push(((e as u64) << 32 | NO_ELEM, u)),
                    [e1, e2] => upd_groups.push(((e1 as u64) << 32 | e2 as u64, u)),
                    _ => {
                        let d = q.exact_degree(u);
                        q.degree[u] = d;
                        buckets.push(u, d);
                    }
                }
            }
            upd_groups.sort_unstable();
            let mut i = 0;
            while i < upd_groups.len() {
                let key = upd_groups[i].0;
                let mut j = i + 1;
                while j < upd_groups.len() && upd_groups[j].0 == key {
                    j += 1;
                }
                let e1 = (key >> 32) as usize;
                let e2 = (key & 0xffff_ffff) as usize;
                let m = q.next_marker();
                let mut union_w = 0usize;
                for idx in 0..q.elem_vars[e1].len() {
                    let u = q.elem_vars[e1][idx];
                    if q.live(u) && q.marker[u] != m {
                        q.marker[u] = m;
                        union_w += q.weight[u];
                    }
                }
                if e2 != NO_ELEM as usize {
                    for idx in 0..q.elem_vars[e2].len() {
                        let u = q.elem_vars[e2][idx];
                        if q.live(u) && q.marker[u] != m {
                            q.marker[u] = m;
                            union_w += q.weight[u];
                        }
                    }
                }
                for &(_, v) in &upd_groups[i..j] {
                    // v lies on each of its elements' boundaries, so it
                    // is marked in the union; external degree drops it.
                    let mut d = union_w - q.weight[v];
                    for idx in 0..q.adj_vars[v].len() {
                        let a = q.adj_vars[v][idx];
                        if q.live(a) && q.marker[a] != m {
                            d += q.weight[a];
                        }
                    }
                    q.degree[v] = d;
                    buckets.push(v, d);
                }
                i = j;
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    (order, counters)
}

/// Compressed-graph minimum degree end to end: analyze → weighted MD on
/// the quotient graph → expand. Returns the permutation, the
/// compression statistics, and the elimination counters.
pub(crate) fn compressed_min_degree(
    pattern: &SymmetricPattern,
    delta: usize,
    approx: bool,
) -> (Permutation, GraphCompression, MdCounters) {
    let gc = GraphCompression::analyze(pattern);
    let (order_c, counters) = weighted_min_degree(&gc.compressed, &gc.weights, delta, approx);
    let perm = gc.expand(&order_c);
    (perm, gc, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmd::{elimination_fill, multiple_minimum_degree};
    use spfactor_matrix::gen;

    fn fill_under(pattern: &SymmetricPattern, perm: &Permutation) -> usize {
        elimination_fill(&pattern.permute(perm))
    }

    #[test]
    fn complete_graph_compresses_to_one_node() {
        let mut e = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                e.push((b, a));
            }
        }
        let k6 = SymmetricPattern::from_edges(6, e);
        let gc = GraphCompression::analyze(&k6);
        assert_eq!(gc.n_compressed(), 1);
        assert_eq!(gc.weights, vec![6]);
        assert_eq!(gc.members(0), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(gc.ratio(), 6.0);
    }

    #[test]
    fn grid_laplacian_does_not_compress() {
        let p = gen::lap9(6, 6);
        let gc = GraphCompression::analyze(&p);
        assert_eq!(gc.n_compressed(), 36, "9-point grid nodes are distinct");
        assert_eq!(gc.compressed, p);
    }

    #[test]
    fn fe_grid_compresses() {
        // The 5-point finite-element grid carries multiple unknowns with
        // identical closed neighborhoods (element-interior nodes).
        let p = gen::grid5_fe(4, 4);
        let gc = GraphCompression::analyze(&p);
        assert!(
            gc.n_compressed() < p.n(),
            "FE grid must compress: {} -> {}",
            p.n(),
            gc.n_compressed()
        );
        // Weights cover every variable exactly once.
        assert_eq!(gc.weights.iter().sum::<usize>(), p.n());
    }

    #[test]
    fn expansion_is_a_valid_permutation() {
        let p = gen::grid5_fe(5, 5);
        let (perm, gc, _) = compressed_min_degree(&p, 0, false);
        assert_eq!(perm.len(), p.n());
        assert!(gc.ratio() >= 1.0);
    }

    #[test]
    fn weighted_md_with_unit_weights_matches_oracle() {
        // On a non-compressing pattern the whole compressed path must
        // reproduce the oracle's permutation bit for bit.
        for p in [
            gen::lap9(8, 8),
            gen::grid5(7, 5),
            gen::power_network(50, 9, 3),
        ] {
            let oracle = multiple_minimum_degree(&p, 0);
            let gc = GraphCompression::analyze(&p);
            if gc.n_compressed() == p.n() {
                let (perm, _, _) = compressed_min_degree(&p, 0, false);
                assert_eq!(perm, oracle, "n = {}", p.n());
            }
        }
    }

    #[test]
    fn compressed_fill_stays_in_regime() {
        for p in [
            gen::lap9(10, 10),
            gen::grid5_fe(6, 6),
            gen::frame_shell(4, 8),
            gen::power_network(80, 11, 4),
        ] {
            let direct = fill_under(&p, &multiple_minimum_degree(&p, 0));
            let (perm, _, _) = compressed_min_degree(&p, 0, false);
            let compressed = fill_under(&p, &perm);
            assert!(
                compressed <= direct.saturating_mul(13) / 10 + 16,
                "compressed fill {compressed} vs direct {direct}"
            );
        }
    }

    #[test]
    fn compressed_is_deterministic() {
        let p = gen::grid5_fe(6, 6);
        let (a, _, _) = compressed_min_degree(&p, 0, false);
        let (b, _, _) = compressed_min_degree(&p, 0, false);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_patterns() {
        let empty = SymmetricPattern::from_edges(0, []);
        let (perm, gc, _) = compressed_min_degree(&empty, 0, false);
        assert_eq!(perm.len(), 0);
        assert_eq!(gc.ratio(), 1.0);
        let one = SymmetricPattern::from_edges(1, []);
        let (perm, _, _) = compressed_min_degree(&one, 0, false);
        assert_eq!(perm.len(), 1);
        // Two isolated vertices share the empty neighborhood *plus*
        // themselves — closed neighborhoods differ, so no merge.
        let two = SymmetricPattern::from_edges(2, []);
        let gc = GraphCompression::analyze(&two);
        assert_eq!(gc.n_compressed(), 2);
    }

    #[test]
    fn approx_variant_is_valid_and_deterministic() {
        let p = gen::grid5_fe(6, 6);
        let (a, _, _) = compressed_min_degree(&p, 0, true);
        let (b, _, _) = compressed_min_degree(&p, 0, true);
        assert_eq!(a, b);
        assert_eq!(a.len(), p.n());
    }
}
