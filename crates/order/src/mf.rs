//! Minimum local fill (minimum deficiency) ordering.
//!
//! A greedy companion to minimum degree: eliminate the vertex whose
//! elimination creates the fewest new edges. Usually yields slightly
//! sparser factors than minimum degree at a higher ordering cost —
//! included as a comparison point for the fill studies (the paper's
//! Table 1 factor sizes are ordering-dependent).
//!
//! The implementation is a straightforward explicit-graph elimination
//! (`O(n · d³)` worst case), perfectly adequate at the paper's problem
//! sizes (n ≈ 1000); the production ordering remains [`crate::mmd`].

use spfactor_matrix::{Permutation, SymmetricPattern};
use std::collections::BTreeSet;

/// Computes a minimum-local-fill permutation (`perm[new] = old`).
/// Ties are broken by smaller current degree, then smaller vertex id.
///
/// Fill counts are cached and only recomputed for vertices whose
/// neighbourhood structure actually changed: eliminating `v` adds edges
/// only among `N(v)`, so a vertex needs a refresh iff it lost `v` as a
/// neighbour or has at least two neighbours in `N(v)`.
pub fn minimum_fill(pattern: &SymmetricPattern) -> Permutation {
    let n = pattern.n();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (i, j) in pattern.iter_entries() {
        adj[i].insert(j);
        adj[j].insert(i);
    }
    let mut alive: Vec<bool> = vec![true; n];
    let mut order = Vec::with_capacity(n);

    // Fill cost of eliminating v: pairs of neighbours not yet adjacent.
    let fill_of = |adj: &[BTreeSet<usize>], v: usize| -> usize {
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        let mut fill = 0;
        for (a_idx, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[a_idx + 1..] {
                if !adj[a].contains(&b) {
                    fill += 1;
                }
            }
        }
        fill
    };
    let mut fill: Vec<usize> = (0..n).map(|v| fill_of(&adj, v)).collect();
    let mut touch_count = vec![0usize; n];

    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| (fill[v], adj[v].len(), v))
            .expect("live vertices remain");
        // Eliminate v: clique its neighbourhood.
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        for (a_idx, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[a_idx + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        for &a in &nbrs {
            adj[a].remove(&v);
        }
        adj[v].clear();
        alive[v] = false;
        order.push(v);

        // Refresh fill counts of affected vertices: all of N(v), plus any
        // vertex with >= 2 neighbours in N(v) (a pair among its
        // neighbourhood may have become adjacent).
        let mut affected: Vec<usize> = Vec::new();
        for &a in &nbrs {
            if alive[a] {
                affected.push(a);
            }
            for &w in &adj[a] {
                touch_count[w] += 1;
                if touch_count[w] == 2 && alive[w] {
                    affected.push(w);
                }
            }
        }
        // Reset the scratch counts.
        for &a in &nbrs {
            for &w in &adj[a] {
                touch_count[w] = 0;
            }
        }
        affected.sort_unstable();
        affected.dedup();
        for w in affected {
            fill[w] = fill_of(&adj, w);
        }
    }
    Permutation::from_vec(order).expect("every vertex eliminated once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmd::{elimination_fill, multiple_minimum_degree};
    use spfactor_matrix::gen;

    #[test]
    fn mf_is_a_valid_permutation() {
        let p = gen::lap9(6, 6);
        assert_eq!(minimum_fill(&p).len(), 36);
    }

    #[test]
    fn mf_is_deterministic() {
        let p = gen::grid5(6, 6);
        assert_eq!(minimum_fill(&p), minimum_fill(&p));
    }

    #[test]
    fn mf_zero_fill_on_chordal_graphs() {
        // Trees and complete graphs are chordal: a perfect elimination
        // ordering exists and minimum fill must find one (greedy MF is
        // exact on chordal graphs).
        let tree = gen::power_network(40, 0, 2);
        assert_eq!(elimination_fill(&tree.permute(&minimum_fill(&tree))), 0);
        let mut e = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                e.push((b, a));
            }
        }
        let k6 = SymmetricPattern::from_edges(6, e);
        assert_eq!(elimination_fill(&k6.permute(&minimum_fill(&k6))), 0);
    }

    #[test]
    fn mf_competitive_with_mmd_on_grids() {
        let p = gen::lap9(8, 8);
        let mf = elimination_fill(&p.permute(&minimum_fill(&p)));
        let mmd = elimination_fill(&p.permute(&multiple_minimum_degree(&p, 0)));
        // MF is typically at least as good as MD on small grids; allow a
        // modest margin for tie-breaking noise.
        assert!(
            (mf as f64) <= 1.15 * mmd as f64,
            "MF fill {mf} vs MMD fill {mmd}"
        );
    }

    #[test]
    fn mf_on_cycle_is_optimal() {
        // C_n needs exactly n - 3 fill edges; greedy MF achieves it.
        let mut edges: Vec<(usize, usize)> = (1..8).map(|i| (i, i - 1)).collect();
        edges.push((7, 0));
        let c8 = SymmetricPattern::from_edges(8, edges);
        let fill = elimination_fill(&c8.permute(&minimum_fill(&c8)));
        assert_eq!(fill, 5);
    }

    use spfactor_matrix::SymmetricPattern;
}
