//! Reverse Cuthill-McKee ordering.
//!
//! A bandwidth/profile-reducing ordering used here as a classic baseline:
//! BFS from a pseudo-peripheral vertex, visiting neighbours in ascending
//! degree, then reverse the visit order.

use spfactor_matrix::{Permutation, SymmetricPattern};

/// Computes the reverse Cuthill-McKee permutation (`perm[new] = old`).
/// Each connected component is started from its own pseudo-peripheral
/// vertex; components are processed in order of their smallest vertex.
pub fn reverse_cuthill_mckee(pattern: &SymmetricPattern) -> Permutation {
    let n = pattern.n();
    let g = pattern.to_graph();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs: Vec<usize> = Vec::new();
    for s in 0..n {
        if visited[s] {
            continue;
        }
        let root = g.pseudo_peripheral(s);
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs.clear();
            nbrs.extend(g.neighbors(v).iter().copied().filter(|&w| !visited[w]));
            nbrs.sort_unstable_by_key(|&w| (g.degree(w), w));
            for &w in &nbrs {
                visited[w] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order).expect("RCM visits every vertex exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfactor_matrix::gen;
    use spfactor_matrix::stats::structure_stats;

    #[test]
    fn rcm_is_a_permutation() {
        let p = gen::lap9(7, 5);
        let perm = reverse_cuthill_mckee(&p);
        assert_eq!(perm.len(), 35);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_grid() {
        use rand::{seq::SliceRandom, SeedableRng};
        let p = gen::grid5(10, 10);
        // Shuffle the grid labels to destroy its natural banding.
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(1));
        let shuffled = p.permute(&Permutation::from_vec(v).unwrap());
        let before = structure_stats(&shuffled).bandwidth;
        let after = structure_stats(&shuffled.permute(&reverse_cuthill_mckee(&shuffled))).bandwidth;
        assert!(
            after < before / 2,
            "bandwidth not reduced: {before} -> {after}"
        );
    }

    #[test]
    fn rcm_on_path_gives_bandwidth_one() {
        let p = SymmetricPattern::from_edges(8, (1..8).map(|i| (i, i - 1)));
        let q = p.permute(&reverse_cuthill_mckee(&p));
        assert_eq!(structure_stats(&q).bandwidth, 1);
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let p = SymmetricPattern::from_edges(6, [(1, 0), (4, 3), (5, 4)]);
        let perm = reverse_cuthill_mckee(&p);
        assert_eq!(perm.len(), 6);
    }

    #[test]
    fn rcm_handles_isolated_vertices() {
        let p = SymmetricPattern::from_edges(3, [(2, 0)]);
        let perm = reverse_cuthill_mckee(&p);
        assert_eq!(perm.len(), 3);
    }
}
