//! Recursive nested dissection ordering.
//!
//! A generic (graph-based, not geometry-based) nested dissection: split
//! each component with a BFS level-structure separator from a
//! pseudo-peripheral vertex, number the two halves recursively, then the
//! separator last. Small subgraphs fall back to minimum degree.

use crate::mmd::multiple_minimum_degree;
use spfactor_matrix::{Graph, Permutation, SymmetricPattern};

/// Subgraphs at or below this size are ordered with MMD instead of being
/// dissected further.
const LEAF_SIZE: usize = 16;

/// Computes a nested dissection permutation (`perm[new] = old`).
pub fn nested_dissection(pattern: &SymmetricPattern) -> Permutation {
    let n = pattern.n();
    let g = pattern.to_graph();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let all: Vec<usize> = (0..n).collect();
    dissect(&g, &all, &mut order);
    debug_assert_eq!(order.len(), n);
    Permutation::from_vec(order).expect("dissection numbers every vertex once")
}

/// Recursively orders the vertices of `verts` (a union of components of
/// the induced subgraph), appending to `order`.
fn dissect(g: &Graph, verts: &[usize], order: &mut Vec<usize>) {
    if verts.is_empty() {
        return;
    }
    if verts.len() <= LEAF_SIZE {
        order_leaf(g, verts, order);
        return;
    }
    // Induced-subgraph membership.
    let member: std::collections::HashSet<usize> = verts.iter().copied().collect();

    // BFS level structure from a pseudo-peripheral vertex of the first
    // component found.
    let root = pseudo_peripheral_in(g, verts[0], &member);
    let levels = bfs_levels_in(g, root, &member);
    let max_level = levels.values().copied().max().unwrap_or(0);

    // Unreached vertices (other components): dissect them independently.
    let unreached: Vec<usize> = verts
        .iter()
        .copied()
        .filter(|v| !levels.contains_key(v))
        .collect();

    if max_level < 2 {
        // Too shallow to split: order directly.
        let reached: Vec<usize> = verts
            .iter()
            .copied()
            .filter(|v| levels.contains_key(v))
            .collect();
        order_leaf(g, &reached, order);
        dissect(g, &unreached, order);
        return;
    }

    let mid = max_level / 2;
    let mut part_a: Vec<usize> = Vec::new();
    let mut part_b: Vec<usize> = Vec::new();
    let mut sep: Vec<usize> = Vec::new();
    for &v in verts {
        match levels.get(&v) {
            Some(&l) if l < mid => part_a.push(v),
            Some(&l) if l == mid => sep.push(v),
            Some(_) => part_b.push(v),
            None => {}
        }
    }
    dissect(g, &part_a, order);
    dissect(g, &part_b, order);
    dissect(g, &unreached, order);
    // Separator last.
    order_leaf(g, &sep, order);
}

/// Orders a small vertex set with MMD on its induced subgraph.
fn order_leaf(g: &Graph, verts: &[usize], order: &mut Vec<usize>) {
    if verts.len() <= 1 {
        order.extend_from_slice(verts);
        return;
    }
    // Build the induced subgraph with local ids.
    let mut local = std::collections::HashMap::with_capacity(verts.len());
    for (k, &v) in verts.iter().enumerate() {
        local.insert(v, k);
    }
    let mut edges = Vec::new();
    for (k, &v) in verts.iter().enumerate() {
        for &w in g.neighbors(v) {
            if let Some(&m) = local.get(&w) {
                if m > k {
                    edges.push((m, k));
                }
            }
        }
    }
    let sub = SymmetricPattern::from_edges(verts.len(), edges);
    let perm = multiple_minimum_degree(&sub, 0);
    for new in 0..verts.len() {
        order.push(verts[perm.old_of(new)]);
    }
}

fn bfs_levels_in(
    g: &Graph,
    root: usize,
    member: &std::collections::HashSet<usize>,
) -> std::collections::HashMap<usize, usize> {
    let mut level = std::collections::HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    level.insert(root, 0usize);
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let l = level[&v];
        for &w in g.neighbors(v) {
            if member.contains(&w) && !level.contains_key(&w) {
                level.insert(w, l + 1);
                queue.push_back(w);
            }
        }
    }
    level
}

fn pseudo_peripheral_in(
    g: &Graph,
    start: usize,
    member: &std::collections::HashSet<usize>,
) -> usize {
    let mut v = start;
    let mut ecc = 0usize;
    loop {
        let levels = bfs_levels_in(g, v, member);
        let (&far, &e) = levels
            .iter()
            .max_by_key(|&(&w, &l)| (l, std::cmp::Reverse(w)))
            .expect("level structure non-empty");
        if e > ecc {
            ecc = e;
            v = far;
        } else {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmd::elimination_fill;
    use spfactor_matrix::gen;

    #[test]
    fn nd_is_a_valid_permutation() {
        let p = gen::lap9(9, 9);
        assert_eq!(nested_dissection(&p).len(), 81);
    }

    #[test]
    fn nd_is_deterministic() {
        let p = gen::grid5(8, 8);
        assert_eq!(nested_dissection(&p), nested_dissection(&p));
    }

    #[test]
    fn nd_reduces_fill_on_grid() {
        let p = gen::grid5(12, 12);
        let natural = elimination_fill(&p);
        let nd = elimination_fill(&p.permute(&nested_dissection(&p)));
        assert!(nd < natural, "ND fill {nd} vs natural {natural}");
    }

    #[test]
    fn nd_handles_small_and_disconnected() {
        let p = SymmetricPattern::from_edges(5, [(1, 0), (4, 3)]);
        assert_eq!(nested_dissection(&p).len(), 5);
        let p = SymmetricPattern::from_edges(2, [(1, 0)]);
        assert_eq!(nested_dissection(&p).len(), 2);
        let p = SymmetricPattern::from_edges(0, []);
        assert_eq!(nested_dissection(&p).len(), 0);
    }

    #[test]
    fn nd_on_large_disconnected_graph() {
        // Two 6x6 grids side by side with no connection.
        let a = gen::grid5(6, 6);
        let edges: Vec<(usize, usize)> = a
            .iter_entries()
            .flat_map(|(i, j)| [(i, j), (i + 36, j + 36)])
            .collect();
        let p = SymmetricPattern::from_edges(72, edges);
        assert_eq!(nested_dissection(&p).len(), 72);
    }
}
