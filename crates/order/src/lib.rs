//! Fill-reducing orderings for sparse Cholesky factorization.
//!
//! The paper orders every test matrix with *Liu's modified multiple minimum
//! degree* scheme (reference \[10\] of the paper) before partitioning. This
//! crate implements that algorithm from scratch ([`mmd`]), together with
//! the supporting cast a sparse direct solver needs:
//!
//! * [`etree`] — elimination trees and postorderings;
//! * [`rcm`] — reverse Cuthill-McKee (bandwidth-oriented baseline);
//! * [`nested`] — recursive nested dissection;
//! * [`mf`] — greedy minimum local fill (fill-quality reference point);
//! * [`mmd::approximate_minimum_degree`] — upper-bound-degree AMD variant;
//! * [`Ordering`] — a method-selection enum with a single [`order`] entry
//!   point used by the pipeline.
//!
//! # Choosing an ordering
//!
//! The pipeline accepts any variant through `Pipeline::ordering`; they
//! trade fill quality against ordering runtime:
//!
//! | method | fill quality | runtime | when to use |
//! |---|---|---|---|
//! | `MultipleMinimumDegree` | best on the paper's matrices | slowest of the degree family — exact external degrees, multiple elimination per pass | the paper's configuration; the default everywhere |
//! | `ApproximateMinimumDegree` | within a few percent of MMD | substantially cheaper per elimination — upper-bound degrees avoid reach-set scans | large problems where ordering time shows up in the front end |
//! | `ReverseCuthillMcKee` | poor (bandwidth, not fill) | near-linear BFS | banded structures; baseline comparisons |
//! | `NestedDissection` | good asymptotics on meshes, weaker constants here | separator BFS per level | regular grids at scale |
//! | `MinimumFill` | often lowest fill | much slower — simulates fill per candidate | small matrices; fill-quality reference |
//! | `Natural` | none | free | pre-ordered inputs; debugging |
//!
//! Measured numbers back these rows: `BENCH_pipeline.json` records
//! MMD-vs-AMD wall time and resulting factor nonzeros per paper matrix
//! under `order_alt` (regenerate with `scripts/bench.sh`), and the
//! `orderings` bench bin (`cargo run --release -p spfactor-bench --bin
//! orderings`) sweeps fill across every method. A pipeline run tagged
//! with a recorder reports the method it used via the `order.alg.<name>`
//! counter and its cost under the `order.compute` span (see
//! `docs/METRICS.md`).

pub mod compress;
pub mod etree;
pub mod mf;
pub mod mmd;
pub mod nested;
pub mod rcm;

pub use compress::GraphCompression;

use spfactor_matrix::{Permutation, SymmetricPattern};
use spfactor_trace::Recorder;

/// Ordering algorithm selector for [`order`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ordering {
    /// Keep the natural (input) ordering.
    Natural,
    /// Reverse Cuthill-McKee.
    ReverseCuthillMcKee,
    /// Liu's multiple minimum degree with the given `delta` threshold
    /// (`delta = 0` is classic MMD; larger values eliminate more nodes per
    /// pass at a small fill cost). The paper uses this ordering.
    MultipleMinimumDegree {
        /// Tolerance above the current minimum degree for multiple
        /// elimination.
        delta: usize,
    },
    /// Recursive nested dissection with BFS-level separators.
    NestedDissection,
    /// Greedy minimum local fill (minimum deficiency).
    MinimumFill,
    /// Approximate minimum degree (upper-bound degrees, AMD flavour).
    ApproximateMinimumDegree,
}

impl Ordering {
    /// The ordering the paper uses for all experiments.
    pub fn paper_default() -> Self {
        Ordering::MultipleMinimumDegree { delta: 0 }
    }

    /// Stable lowercase name used in metrics (`order.alg.<name>`) and the
    /// bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Ordering::Natural => "natural",
            Ordering::ReverseCuthillMcKee => "rcm",
            Ordering::MultipleMinimumDegree { .. } => "mmd",
            Ordering::NestedDissection => "nd",
            Ordering::MinimumFill => "mf",
            Ordering::ApproximateMinimumDegree => "amd",
        }
    }
}

/// Execution strategy for the minimum-degree family, selected on the
/// pipeline like `SimulateEngine` and `DepsEngine`: same fill regime,
/// different cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OrderEngine {
    /// The per-variable oracle in [`mmd`]: exact, simple, and the
    /// reference every other engine is validated against.
    #[default]
    Direct,
    /// Compressed-graph engine ([`compress`]): collapses
    /// indistinguishable nodes into weighted supervariables up front,
    /// orders the quotient graph with a degree-bucketed driver (no
    /// per-pass full scans, no allocation on the degree-update path),
    /// and expands the permutation back. Applies to
    /// [`Ordering::MultipleMinimumDegree`] and
    /// [`Ordering::ApproximateMinimumDegree`]; every other method has no
    /// quotient-graph formulation here and falls back to the direct
    /// algorithm unchanged.
    Compressed,
}

impl OrderEngine {
    /// Stable lowercase name used in metrics (`order.engine.<name>`),
    /// schedule-artifact headers, and the bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            OrderEngine::Direct => "direct",
            OrderEngine::Compressed => "compressed",
        }
    }
}

/// Computes the permutation for `pattern` under the selected method.
/// `perm[new] = old` as everywhere in the workspace.
pub fn order(pattern: &SymmetricPattern, method: Ordering) -> Permutation {
    match method {
        Ordering::Natural => Permutation::identity(pattern.n()),
        Ordering::ReverseCuthillMcKee => rcm::reverse_cuthill_mckee(pattern),
        Ordering::MultipleMinimumDegree { delta } => mmd::multiple_minimum_degree(pattern, delta),
        Ordering::NestedDissection => nested::nested_dissection(pattern),
        Ordering::MinimumFill => mf::minimum_fill(pattern),
        Ordering::ApproximateMinimumDegree => mmd::approximate_minimum_degree(pattern),
    }
}

/// [`order`] with instrumentation: times the whole computation under the
/// span `order.compute`, records which algorithm ran as the
/// `order.alg.<name>` counter (names from [`Ordering::name`]) and, for
/// the minimum-degree methods, the `order.mmd.*` work counters (see
/// `docs/METRICS.md`).
///
/// ```
/// use spfactor_order::{order_traced, Ordering};
/// use spfactor_trace::Recorder;
///
/// let pattern = spfactor_matrix::gen::lap9(4, 4);
/// let rec = Recorder::new();
/// let perm = order_traced(&pattern, Ordering::paper_default(), &rec);
/// assert_eq!(perm.len(), 16);
/// if rec.is_enabled() {
///     assert!(rec.counter("order.mmd.passes") > 0);
///     assert_eq!(rec.counter("order.alg.mmd"), 1);
/// }
/// ```
pub fn order_traced(
    pattern: &SymmetricPattern,
    method: Ordering,
    recorder: &Recorder,
) -> Permutation {
    order_with_engine_traced(pattern, method, OrderEngine::Direct, recorder)
}

/// [`order`] under an explicit [`OrderEngine`]. `Direct` is exactly
/// [`order`]; `Compressed` routes the minimum-degree methods through
/// [`compress`] and falls back to the direct algorithm for everything
/// else.
pub fn order_with_engine(
    pattern: &SymmetricPattern,
    method: Ordering,
    engine: OrderEngine,
) -> Permutation {
    match (engine, method) {
        (OrderEngine::Compressed, Ordering::MultipleMinimumDegree { delta }) => {
            compress::compressed_min_degree(pattern, delta, false).0
        }
        (OrderEngine::Compressed, Ordering::ApproximateMinimumDegree) => {
            compress::compressed_min_degree(pattern, 0, true).0
        }
        _ => order(pattern, method),
    }
}

/// [`order_with_engine`] with instrumentation: the `order.compute` span,
/// the `order.alg.<name>` and `order.engine.<name>` counters, the
/// `order.mmd.*` work counters for the minimum-degree family, and — on
/// the compressed engine — the `order.compress.{original,nodes,ratio}`
/// gauges (see `docs/METRICS.md`).
pub fn order_with_engine_traced(
    pattern: &SymmetricPattern,
    method: Ordering,
    engine: OrderEngine,
    recorder: &Recorder,
) -> Permutation {
    let _span = recorder.span("order.compute");
    recorder.incr(&format!("order.alg.{}", method.name()), 1);
    recorder.incr(&format!("order.engine.{}", engine.name()), 1);
    match (engine, method) {
        (OrderEngine::Compressed, Ordering::MultipleMinimumDegree { delta }) => {
            compressed_traced(pattern, delta, false, recorder)
        }
        (OrderEngine::Compressed, Ordering::ApproximateMinimumDegree) => {
            compressed_traced(pattern, 0, true, recorder)
        }
        (_, Ordering::MultipleMinimumDegree { delta }) => {
            mmd::multiple_minimum_degree_traced(pattern, delta, recorder)
        }
        (_, Ordering::ApproximateMinimumDegree) => {
            mmd::approximate_minimum_degree_traced(pattern, recorder)
        }
        (_, other) => order(pattern, other),
    }
}

fn compressed_traced(
    pattern: &SymmetricPattern,
    delta: usize,
    approx: bool,
    recorder: &Recorder,
) -> Permutation {
    let (perm, gc, counters) = compress::compressed_min_degree(pattern, delta, approx);
    recorder.gauge("order.compress.original", gc.n_original() as f64);
    recorder.gauge("order.compress.nodes", gc.n_compressed() as f64);
    recorder.gauge("order.compress.ratio", gc.ratio());
    recorder.incr("order.mmd.passes", counters.passes);
    recorder.incr("order.mmd.eliminations", counters.eliminations);
    recorder.incr("order.mmd.degree_updates", counters.degree_updates);
    recorder.incr("order.mmd.supervariable_merges", counters.merges);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfactor_matrix::gen;

    #[test]
    fn all_methods_produce_valid_permutations() {
        let p = gen::lap9(6, 6);
        for m in [
            Ordering::Natural,
            Ordering::ReverseCuthillMcKee,
            Ordering::MultipleMinimumDegree { delta: 0 },
            Ordering::MultipleMinimumDegree { delta: 1 },
            Ordering::NestedDissection,
            Ordering::MinimumFill,
            Ordering::ApproximateMinimumDegree,
        ] {
            let perm = order(&p, m);
            assert_eq!(perm.len(), 36, "{m:?}");
        }
    }

    #[test]
    fn natural_is_identity() {
        let p = gen::grid5(3, 3);
        assert!(order(&p, Ordering::Natural).is_identity());
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(Ordering::Natural.name(), "natural");
        assert_eq!(Ordering::ReverseCuthillMcKee.name(), "rcm");
        assert_eq!(Ordering::MultipleMinimumDegree { delta: 2 }.name(), "mmd");
        assert_eq!(Ordering::NestedDissection.name(), "nd");
        assert_eq!(Ordering::MinimumFill.name(), "mf");
        assert_eq!(Ordering::ApproximateMinimumDegree.name(), "amd");
    }

    #[test]
    fn paper_default_is_mmd_zero() {
        assert_eq!(
            Ordering::paper_default(),
            Ordering::MultipleMinimumDegree { delta: 0 }
        );
    }
}
