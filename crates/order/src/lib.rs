//! Fill-reducing orderings for sparse Cholesky factorization.
//!
//! The paper orders every test matrix with *Liu's modified multiple minimum
//! degree* scheme (reference \[10\] of the paper) before partitioning. This
//! crate implements that algorithm from scratch ([`mmd`]), together with
//! the supporting cast a sparse direct solver needs:
//!
//! * [`etree`] — elimination trees and postorderings;
//! * [`rcm`] — reverse Cuthill-McKee (bandwidth-oriented baseline);
//! * [`nested`] — recursive nested dissection;
//! * [`mf`] — greedy minimum local fill (fill-quality reference point);
//! * [`mmd::approximate_minimum_degree`] — upper-bound-degree AMD variant;
//! * [`Ordering`] — a method-selection enum with a single [`order`] entry
//!   point used by the pipeline.

pub mod etree;
pub mod mf;
pub mod mmd;
pub mod nested;
pub mod rcm;

use spfactor_matrix::{Permutation, SymmetricPattern};
use spfactor_trace::Recorder;

/// Ordering algorithm selector for [`order`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// Keep the natural (input) ordering.
    Natural,
    /// Reverse Cuthill-McKee.
    ReverseCuthillMcKee,
    /// Liu's multiple minimum degree with the given `delta` threshold
    /// (`delta = 0` is classic MMD; larger values eliminate more nodes per
    /// pass at a small fill cost). The paper uses this ordering.
    MultipleMinimumDegree {
        /// Tolerance above the current minimum degree for multiple
        /// elimination.
        delta: usize,
    },
    /// Recursive nested dissection with BFS-level separators.
    NestedDissection,
    /// Greedy minimum local fill (minimum deficiency).
    MinimumFill,
    /// Approximate minimum degree (upper-bound degrees, AMD flavour).
    ApproximateMinimumDegree,
}

impl Ordering {
    /// The ordering the paper uses for all experiments.
    pub fn paper_default() -> Self {
        Ordering::MultipleMinimumDegree { delta: 0 }
    }
}

/// Computes the permutation for `pattern` under the selected method.
/// `perm[new] = old` as everywhere in the workspace.
pub fn order(pattern: &SymmetricPattern, method: Ordering) -> Permutation {
    match method {
        Ordering::Natural => Permutation::identity(pattern.n()),
        Ordering::ReverseCuthillMcKee => rcm::reverse_cuthill_mckee(pattern),
        Ordering::MultipleMinimumDegree { delta } => mmd::multiple_minimum_degree(pattern, delta),
        Ordering::NestedDissection => nested::nested_dissection(pattern),
        Ordering::MinimumFill => mf::minimum_fill(pattern),
        Ordering::ApproximateMinimumDegree => mmd::approximate_minimum_degree(pattern),
    }
}

/// [`order`] with instrumentation: times the whole computation under the
/// span `order.compute` and, for the minimum-degree methods, records the
/// `order.mmd.*` work counters (see `docs/METRICS.md`).
///
/// ```
/// use spfactor_order::{order_traced, Ordering};
/// use spfactor_trace::Recorder;
///
/// let pattern = spfactor_matrix::gen::lap9(4, 4);
/// let rec = Recorder::new();
/// let perm = order_traced(&pattern, Ordering::paper_default(), &rec);
/// assert_eq!(perm.len(), 16);
/// if rec.is_enabled() {
///     assert!(rec.counter("order.mmd.passes") > 0);
/// }
/// ```
pub fn order_traced(
    pattern: &SymmetricPattern,
    method: Ordering,
    recorder: &Recorder,
) -> Permutation {
    let _span = recorder.span("order.compute");
    match method {
        Ordering::MultipleMinimumDegree { delta } => {
            mmd::multiple_minimum_degree_traced(pattern, delta, recorder)
        }
        Ordering::ApproximateMinimumDegree => {
            mmd::approximate_minimum_degree_traced(pattern, recorder)
        }
        other => order(pattern, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfactor_matrix::gen;

    #[test]
    fn all_methods_produce_valid_permutations() {
        let p = gen::lap9(6, 6);
        for m in [
            Ordering::Natural,
            Ordering::ReverseCuthillMcKee,
            Ordering::MultipleMinimumDegree { delta: 0 },
            Ordering::MultipleMinimumDegree { delta: 1 },
            Ordering::NestedDissection,
            Ordering::MinimumFill,
            Ordering::ApproximateMinimumDegree,
        ] {
            let perm = order(&p, m);
            assert_eq!(perm.len(), 36, "{m:?}");
        }
    }

    #[test]
    fn natural_is_identity() {
        let p = gen::grid5(3, 3);
        assert!(order(&p, Ordering::Natural).is_identity());
    }

    #[test]
    fn paper_default_is_mmd_zero() {
        assert_eq!(
            Ordering::paper_default(),
            Ordering::MultipleMinimumDegree { delta: 0 }
        );
    }
}
