use spfactor_matrix::gen;
use spfactor_order::{order_with_engine, OrderEngine, Ordering};

#[test]
fn approx_compressed_denser_graphs() {
    let cases = vec![
        ("grid7", gen::grid7(6, 6, 6)),
        ("power", gen::power_network(200, 60, 7)),
        ("lap9", gen::lap9(12, 12)),
        ("fe", gen::grid5_fe(8, 8)),
        ("lshape", gen::lshape(12)),
        ("grid7big", gen::grid7(8, 8, 8)),
        ("power2", gen::power_network(300, 150, 11)),
    ];
    for (name, p) in cases {
        let n = p.n();
        let perm = order_with_engine(&p, Ordering::ApproximateMinimumDegree, OrderEngine::Compressed);
        assert_eq!(perm.len(), n, "{name}");
        println!("{name}: ok n={n}");
    }
}
