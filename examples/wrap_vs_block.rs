//! Head-to-head comparison of the block scheme against wrap mapping on
//! all five paper matrices, including hot-spot structure (the paper's §5
//! remark that wrap mappings make every processor talk to many others).
//!
//! ```text
//! cargo run --release --example wrap_vs_block
//! ```

use spfactor::{Pipeline, Scheme};

fn main() {
    let nprocs = 16;
    println!("P = {nprocs}");
    println!(
        "{:>9} | {:>9} {:>6} {:>9} | {:>9} {:>6} {:>9} | {:>7}",
        "matrix", "blk traf", "blk Δ", "blk partn", "wrp traf", "wrp Δ", "wrp partn", "saving"
    );
    for m in spfactor::matrix::gen::paper::all() {
        let block = Pipeline::new(m.pattern.clone())
            .grain(25)
            .processors(nprocs)
            .run();
        let wrap = Pipeline::new(m.pattern.clone())
            .scheme(Scheme::Wrap)
            .processors(nprocs)
            .run();
        // Mean number of communication partners per processor.
        let partners = |t: &spfactor::TrafficReport| {
            (0..nprocs).map(|p| t.partners(p)).sum::<usize>() as f64 / nprocs as f64
        };
        let saving = 100.0 * (1.0 - block.traffic.total as f64 / wrap.traffic.total.max(1) as f64);
        println!(
            "{:>9} | {:>9} {:>6.2} {:>9.1} | {:>9} {:>6.2} {:>9.1} | {:>6.0}%",
            m.name,
            block.traffic.total,
            block.work.imbalance(),
            partners(&block.traffic),
            wrap.traffic.total,
            wrap.work.imbalance(),
            partners(&wrap.traffic),
            saving,
        );
    }
    println!();
    println!("\"blk/wrp partn\" is the mean number of distinct processors each");
    println!("processor exchanges data with: block mapping confines communication");
    println!("to small groups, wrap mapping talks to nearly everyone (hot-spots).");
}
