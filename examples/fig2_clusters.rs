//! Regenerates the paper's Figure 2: the filled 41×41 matrix of a 5-point
//! finite-element 5×5 grid under multiple minimum degree ordering, with
//! its cluster decomposition.
//!
//! ```text
//! cargo run --release --example fig2_clusters
//! ```

use spfactor::matrix::plot::ascii_lower_exact;
use spfactor::partition::{identify_clusters, ClusterKind, PartitionParams};
use spfactor::{Ordering, SymbolicFactor};

fn main() {
    let m = spfactor::matrix::gen::paper::fig2_grid();
    println!(
        "{}: {} — n = {}, nnz(A) = {}",
        m.name,
        m.description,
        m.pattern.n(),
        m.pattern.nnz_lower()
    );

    let perm = spfactor::order::order(&m.pattern, Ordering::paper_default());
    let filled = m.pattern.permute(&perm);
    let factor = SymbolicFactor::from_pattern(&filled);
    println!(
        "filled matrix: nnz(L) = {}, fill-in = {}",
        factor.nnz_lower(),
        factor.fill_in()
    );
    println!();
    println!("lower triangle of the filled matrix (# = nonzero):");
    println!("{}", ascii_lower_exact(&factor.to_pattern()));

    let mut params = PartitionParams::with_grain(4);
    params.min_cluster_width = 2;
    let clusters = identify_clusters(&factor, &params);
    println!("clusters (minimum width {}):", params.min_cluster_width);
    for c in &clusters {
        match &c.kind {
            ClusterKind::SingleColumn => {
                println!("  cluster {:2}: column {}", c.id, c.cols.lo);
            }
            ClusterKind::Strip { rect_rows } => {
                println!(
                    "  cluster {:2}: columns {} — triangle of width {}, {} rectangle(s): {}",
                    c.id,
                    c.cols,
                    c.width(),
                    rect_rows.len(),
                    rect_rows
                        .iter()
                        .map(|r| format!("{} x {} at rows {}", r.len(), c.width(), r))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
    }
}
