//! Sweeps the grain size and processor count on one matrix and prints the
//! communication / load-balance trade-off curve — the parameter study
//! behind the paper's Tables 2 and 3.
//!
//! ```text
//! cargo run --release --example tradeoff_sweep [MATRIX]
//! ```
//!
//! `MATRIX` is one of `BUS1138 | CANN1072 | DWT512 | LAP30 | LSHP1009`
//! (default `LAP30`).

use spfactor::Pipeline;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "LAP30".into());
    let m = spfactor::matrix::gen::paper::all()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown matrix {name:?}; expected BUS1138/CANN1072/DWT512/LAP30/LSHP1009");
            std::process::exit(2);
        });
    println!("{} ({})", m.name, m.description);
    println!(
        "{:>6} {:>4} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "grain", "P", "traffic", "mean", "Wmean", "Δ", "units"
    );
    for grain in [1, 2, 4, 8, 16, 25, 50, 100] {
        for nprocs in [4, 16, 32] {
            let r = Pipeline::new(m.pattern.clone())
                .grain(grain)
                .processors(nprocs)
                .run();
            println!(
                "{:>6} {:>4} {:>8} {:>8.1} {:>8.0} {:>8.2} {:>8}",
                grain,
                nprocs,
                r.traffic.total,
                r.traffic.mean_f64(),
                r.work.mean(),
                r.work.imbalance(),
                r.partition.num_units()
            );
        }
    }
    println!();
    println!("Reading the curve: larger grains cut traffic (more data re-use per");
    println!("block) and raise Δ (fewer schedulable units) — the paper's trade-off.");
}
