//! Exports a complete schedule (unit blocks, dependency graph, processor
//! assignment) in the plain-text interchange format — the artifact the
//! paper's partitioner hands to its simulator — then reads it back and
//! verifies the round trip.
//!
//! ```text
//! cargo run --release --example export_schedule [-- out.sched]
//! ```

use spfactor::sched::export::{read_schedule, write_schedule};
use spfactor::Pipeline;

fn main() {
    let m = spfactor::matrix::gen::paper::dwt512();
    let r = Pipeline::new(m.pattern.clone())
        .grain(25)
        .processors(8)
        .run();

    let mut buf = Vec::new();
    write_schedule(&mut buf, &r.partition, &r.deps, &r.assignment).expect("write schedule");

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &buf).expect("write file");
        println!("wrote {} bytes to {path}", buf.len());
    } else {
        println!(
            "schedule for {}: {} units on {} processors, {} dependency edges",
            m.name,
            r.partition.num_units(),
            r.assignment.nprocs,
            r.deps.num_edges()
        );
        // Show the first few records.
        for line in String::from_utf8_lossy(&buf).lines().take(12) {
            println!("  {line}");
        }
        println!("  ... ({} bytes total; pass a path to save)", buf.len());
    }

    // Round trip.
    let dump = read_schedule(buf.as_slice()).expect("parse schedule");
    assert_eq!(dump.units.len(), r.partition.num_units());
    assert_eq!(dump.nprocs, 8);
    println!("round trip OK: {} units parsed back", dump.units.len());
}
