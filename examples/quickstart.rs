//! Quickstart: run the full partitioning/scheduling pipeline on the
//! paper's LAP30 problem and print the two metrics the paper studies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spfactor::{Pipeline, Scheme};

fn main() {
    let matrix = spfactor::matrix::gen::paper::lap30();
    println!("matrix {}: n = {}", matrix.name, matrix.pattern.n());

    for nprocs in [4, 16, 32] {
        let block = Pipeline::new(matrix.pattern.clone())
            .grain(4)
            .processors(nprocs)
            .run();
        let wrap = Pipeline::new(matrix.pattern.clone())
            .scheme(Scheme::Wrap)
            .processors(nprocs)
            .run();
        println!(
            "P = {nprocs:2}: block traffic {:6} (Δ = {:.2})   wrap traffic {:6} (Δ = {:.2})",
            block.traffic.total,
            block.work.imbalance(),
            wrap.traffic.total,
            wrap.work.imbalance(),
        );
    }
    println!();
    println!("The communication / load-balance trade-off of the paper:");
    println!("block mapping moves less data; wrap mapping balances work better.");
}
