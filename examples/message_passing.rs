//! Wrap vs. block communication *as executed*: runs the paper's test
//! matrices through the message-passing backend and compares the traffic
//! the virtual machine actually observed against the analytic
//! prediction, along with the message/byte tallies and the modeled
//! parallel-time estimate the counted simulation cannot produce.
//!
//! ```text
//! cargo run --release --example message_passing
//! ```

use spfactor::{ExecutionBackend, NetworkModel, Pipeline, Scheme};

fn main() {
    let nprocs = 16;
    let model = NetworkModel::default();
    println!(
        "P = {nprocs}, network: latency {:.0e} s, {:.0e} s/element, {:.0e} s/work-unit",
        model.latency, model.per_element, model.flop_time
    );
    println!(
        "{:>9} {:>5} | {:>9} {:>9} {:>5} | {:>8} {:>9} {:>9} | {:>9}",
        "matrix", "map", "predicted", "observed", "match", "msgs", "bytes", "cache hit", "est time"
    );
    for m in spfactor::matrix::gen::paper::all() {
        for scheme in [Scheme::Block, Scheme::Wrap] {
            let mut pipe = Pipeline::new(m.pattern.clone())
                .scheme(scheme)
                .processors(nprocs)
                .backend(ExecutionBackend::MessagePassing(model));
            if scheme == Scheme::Block {
                pipe = pipe.grain(25);
            }
            let r = pipe.run();
            let exec = r.execution.as_ref().expect("backend ran");
            let observed = exec.traffic_report();
            println!(
                "{:>9} {:>5} | {:>9} {:>9} {:>5} | {:>8} {:>9} {:>9} | {:>8.3}s",
                m.name,
                match scheme {
                    Scheme::Block => "block",
                    Scheme::Wrap => "wrap",
                },
                r.traffic.total,
                observed.total,
                if observed == r.traffic { "yes" } else { "NO" },
                exec.msgs_total(),
                exec.bytes_total(),
                exec.cache_hits_total(),
                exec.estimated_time,
            );
        }
    }
    println!();
    println!("\"observed\" is what the virtual processors actually fetched over");
    println!("messages; it equals the analytic prediction element for element.");
    println!("Block mapping moves less data but wrap's estimate can still win");
    println!("when the network is fast and its better load balance dominates.");
}
