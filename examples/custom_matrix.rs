//! Runs the full pipeline on a user-supplied matrix file — the path for
//! anyone holding the original Harwell-Boeing test set (or any symmetric
//! MatrixMarket file).
//!
//! ```text
//! cargo run --release --example custom_matrix -- path/to/matrix.mtx [P] [grain]
//! cargo run --release --example custom_matrix -- path/to/1138bus.psa 16 25
//! ```
//!
//! Files ending in `.mtx` are parsed as MatrixMarket; anything else is
//! tried as Harwell-Boeing.

use spfactor::{Pipeline, Scheme};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: custom_matrix <file> [nprocs] [grain]");
        std::process::exit(2);
    };
    let nprocs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let grain: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let coo = if path.ends_with(".mtx") {
        spfactor::matrix::io::read_matrix_market_file(&path)
    } else {
        spfactor::matrix::io::read_hb_file(&path)
    };
    let coo = coo.unwrap_or_else(|e| {
        eprintln!("failed to read {path}: {e}");
        std::process::exit(1);
    });
    let pattern = coo.to_pattern();
    let stats = spfactor::matrix::stats::structure_stats(&pattern);
    println!(
        "{path}: n = {}, nnz(lower) = {}, components = {}, bandwidth = {}",
        stats.n, stats.nnz_lower, stats.components, stats.bandwidth
    );

    let block = Pipeline::new(pattern.clone())
        .grain(grain)
        .processors(nprocs)
        .run();
    let wrap = Pipeline::new(pattern)
        .scheme(Scheme::Wrap)
        .processors(nprocs)
        .run();
    println!(
        "factor: nnz(L) = {} (fill {}), {} clusters, {} unit blocks",
        block.factor.nnz_lower(),
        block.factor.fill_in(),
        block.partition.clusters.len(),
        block.partition.num_units()
    );
    println!(
        "block  (g = {grain}): traffic {:>8} (mean {:>6.1}), Δ = {:.2}",
        block.traffic.total,
        block.traffic.mean_f64(),
        block.work.imbalance()
    );
    println!(
        "wrap           : traffic {:>8} (mean {:>6.1}), Δ = {:.2}",
        wrap.traffic.total,
        wrap.traffic.mean_f64(),
        wrap.work.imbalance()
    );
}
