//! End-to-end numerical solve: builds an SPD system on the LAP30
//! structure, factors it (sequentially and in parallel on the column
//! DAG), and solves `Ax = b`, verifying the residual.
//!
//! ```text
//! cargo run --release --example solve_demo
//! ```

use spfactor::numeric::{parallel::cholesky_parallel, solve, SpdSolver};
use spfactor::{Ordering, SymbolicFactor};

fn main() {
    let m = spfactor::matrix::gen::paper::lap30();
    let a = spfactor::matrix::gen::spd_from_pattern(&m.pattern, 42);
    let n = a.n();
    println!("{}: n = {n}, nnz(A) = {}", m.name, a.nnz_lower());

    // Whole pipeline: MMD ordering, symbolic + numeric factorization.
    let solver = SpdSolver::new(&a, Ordering::paper_default()).expect("SPD by construction");
    println!(
        "factored: nnz(L) = {} (fill-in {})",
        solver.symbolic().nnz_lower(),
        solver.symbolic().fill_in()
    );

    // Manufactured solution: x* = 1..n scaled.
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) / n as f64).collect();
    let b = a.mul_vec(&x_true);
    let x = solver.solve(&b);
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("solve:    max |x - x*| = {err:.3e}");
    println!(
        "residual: max |Ax - b|  = {:.3e}",
        solve::residual_norm(&a, &x, &b)
    );

    // Parallel factorization on the column DAG must agree bit-for-bit.
    let pa = a.permute(solver.permutation());
    let symbolic = SymbolicFactor::from_pattern(&pa.pattern());
    for threads in [1, 2, 4, 8] {
        let lp = cholesky_parallel(&pa, &symbolic, threads).expect("SPD");
        let same = lp == *solver.factor();
        println!("parallel factorization, {threads} thread(s): bit-identical = {same}");
        assert!(same);
    }
}
