//! Cross-crate integration tests: the full pipeline from pattern to
//! simulation, checked for conservation laws and determinism.

use spfactor::{Ordering, Pipeline, Scheme};

#[test]
fn work_is_conserved_across_schemes_and_processor_counts() {
    let m = spfactor::matrix::gen::paper::dwt512();
    let mut totals = Vec::new();
    for nprocs in [1, 4, 16] {
        for scheme in [Scheme::Block, Scheme::Wrap] {
            let r = Pipeline::new(m.pattern.clone())
                .scheme(scheme)
                .processors(nprocs)
                .run();
            totals.push(r.work.total);
            // Per-processor work sums to the total.
            assert_eq!(r.work.per_proc.iter().sum::<usize>(), r.work.total);
            // Every unit was assigned a valid processor.
            assert!(r
                .assignment
                .proc_of_unit
                .iter()
                .all(|&p| (p as usize) < nprocs));
        }
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "total work must be independent of mapping: {totals:?}"
    );
}

#[test]
fn single_processor_has_no_traffic_and_zero_imbalance() {
    for m in [
        spfactor::matrix::gen::paper::dwt512(),
        spfactor::matrix::gen::paper::lap30(),
    ] {
        for scheme in [Scheme::Block, Scheme::Wrap] {
            let r = Pipeline::new(m.pattern.clone())
                .scheme(scheme)
                .processors(1)
                .run();
            assert_eq!(r.traffic.total, 0, "{} {scheme:?}", m.name);
            assert_eq!(r.work.imbalance(), 0.0);
            assert_eq!(r.work.efficiency(), 1.0);
        }
    }
}

#[test]
fn pipeline_deterministic_end_to_end() {
    let m = spfactor::matrix::gen::paper::dwt512();
    let a = Pipeline::new(m.pattern.clone())
        .grain(25)
        .processors(16)
        .run();
    let b = Pipeline::new(m.pattern.clone())
        .grain(25)
        .processors(16)
        .run();
    assert_eq!(a.permutation, b.permutation);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.work, b.work);
    assert_eq!(a.assignment, b.assignment);
}

#[test]
fn partition_units_cover_all_factor_entries() {
    let m = spfactor::matrix::gen::paper::dwt512();
    for grain in [4, 25] {
        let r = Pipeline::new(m.pattern.clone()).grain(grain).run();
        let owned: usize = r.partition.units.iter().map(|u| u.elements).sum();
        assert_eq!(owned, r.factor.num_entries());
        assert_eq!(r.partition.total_work(), r.factor.paper_work());
    }
}

#[test]
fn dependency_graph_is_acyclic() {
    // Kahn's algorithm must consume every unit.
    let m = spfactor::matrix::gen::paper::lap30();
    let r = Pipeline::new(m.pattern.clone()).grain(4).run();
    let n = r.partition.num_units();
    let mut indeg: Vec<usize> = (0..n).map(|u| r.deps.preds(u).len()).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
    let mut seen = 0;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &s in r.deps.succs(u) {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push(s as usize);
            }
        }
    }
    assert_eq!(seen, n, "dependency graph has a cycle");
}

#[test]
fn timed_simulation_agrees_with_untimed_bounds() {
    // LAP30 has ample parallelism (units >> processors); the thin banded
    // DWT512 substitute would be critical-path-bound instead.
    let m = spfactor::matrix::gen::paper::lap30();
    let r = Pipeline::new(m.pattern.clone())
        .grain(4)
        .processors(8)
        .run();
    let model = spfactor::simulate::timed::CommModel {
        latency: 0.0,
        per_element: 0.0,
        per_work: 1.0,
    };
    let t = spfactor::simulate::timed::simulate_timed(
        &r.factor,
        &r.partition,
        &r.deps,
        &r.assignment,
        &model,
    );
    // With free communication, makespan is bounded below by both the
    // busiest processor's work and the DAG's critical path, and above by
    // serializing everything.
    let cp = {
        let n = r.partition.num_units();
        let mut indeg: Vec<usize> = (0..n).map(|u| r.deps.preds(u).len()).collect();
        let mut dist: Vec<f64> = (0..n).map(|u| r.partition.units[u].work as f64).collect();
        let mut q: std::collections::VecDeque<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
        let mut cp: f64 = 0.0;
        while let Some(u) = q.pop_front() {
            cp = cp.max(dist[u]);
            for &s in r.deps.succs(u) {
                let s = s as usize;
                dist[s] = dist[s].max(dist[u] + r.partition.units[s].work as f64);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    q.push_back(s);
                }
            }
        }
        cp
    };
    assert!(t.makespan >= (r.work.max() as f64).max(cp) - 1e-9);
    assert!(t.makespan <= r.work.total as f64 + 1e-9);
    // DWT512's factor DAG is deep (critical path ≈ 30% of Wtot), so high
    // utilization is impossible at P = 8; demand consistency instead:
    // parallel execution must still beat one processor comfortably.
    assert!(
        t.speedup > 1.5,
        "speedup {} too low for {} units on 8 procs",
        t.speedup,
        r.partition.num_units()
    );
}

#[test]
fn orderings_affect_fill_as_expected() {
    let m = spfactor::matrix::gen::paper::lap30();
    let fill = |o: Ordering| {
        Pipeline::new(m.pattern.clone())
            .ordering(o)
            .processors(1)
            .run()
            .factor
            .fill_in()
    };
    let natural = fill(Ordering::Natural);
    let mmd = fill(Ordering::paper_default());
    let nd = fill(Ordering::NestedDissection);
    assert!(mmd < natural, "MMD {mmd} !< natural {natural}");
    assert!(nd < natural, "ND {nd} !< natural {natural}");
}

#[test]
fn io_round_trip_through_pipeline() {
    // Write a generated matrix as Harwell-Boeing, read it back, and check
    // the pipeline produces identical results on both.
    let p = spfactor::matrix::gen::lap9(8, 8);
    let mut coo = spfactor::matrix::Coo::new(p.n());
    for j in 0..p.n() {
        coo.push(j, j, 1.0).unwrap();
        for &i in p.col(j) {
            coo.push(i, j, 1.0).unwrap();
        }
    }
    let mut buf = Vec::new();
    spfactor::matrix::io::write_hb_pattern(&mut buf, &coo, "pipeline round trip").unwrap();
    let back = spfactor::matrix::io::read_hb(buf.as_slice())
        .unwrap()
        .to_pattern();
    assert_eq!(back, p);
    let a = Pipeline::new(p).processors(4).run();
    let b = Pipeline::new(back).processors(4).run();
    assert_eq!(a.traffic, b.traffic);
}
