//! Cross-validation of the message-passing runtime against the analytic
//! simulator and the sequential factorization, on the paper's LAP30
//! problem (9-point Laplacian on a 30×30 grid) for both mapping schemes.
//!
//! This is the acceptance test of the `spfactor-mp` subsystem: the
//! executed factor must match `spfactor_numeric::cholesky` to 1e-10 (it
//! is in fact bit-identical), and the *observed* per-processor traffic
//! must equal `data_traffic`'s prediction exactly — totals, per
//! processor, and per processor pair.

use spfactor::{
    matrix::gen, mp, numeric, partition, sched, simulate, ExecutionBackend, NetworkModel, Ordering,
    Partition, PartitionParams, Pipeline, Scheme, SymbolicFactor,
};

struct Case {
    name: &'static str,
    a: spfactor::matrix::SymmetricCsc,
    factor: SymbolicFactor,
    partition: Partition,
    deps: spfactor::DepGraph,
    assignment: spfactor::Assignment,
}

fn lap30_case(scheme: Scheme, nprocs: usize) -> Case {
    let m = gen::paper::lap30();
    let perm = spfactor::order::order(&m.pattern, Ordering::paper_default());
    let permuted = m.pattern.permute(&perm);
    let a = gen::spd_from_pattern(&permuted, 7);
    let factor = SymbolicFactor::from_pattern(&permuted);
    let (partition, assignment);
    let deps;
    match scheme {
        Scheme::Block => {
            partition = Partition::build(&factor, &PartitionParams::with_grain(4));
            deps = partition::dependencies(&factor, &partition);
            assignment = sched::block_allocation(&partition, &deps, nprocs);
        }
        Scheme::Wrap => {
            partition = Partition::columns(&factor);
            deps = partition::dependencies(&factor, &partition);
            assignment = sched::wrap_allocation(&partition, nprocs);
        }
    }
    Case {
        name: match scheme {
            Scheme::Block => "block",
            Scheme::Wrap => "wrap",
        },
        a,
        factor,
        partition,
        deps,
        assignment,
    }
}

fn check_case(c: &Case) {
    let report = mp::execute(
        &c.a,
        &c.factor,
        &c.partition,
        &c.deps,
        &c.assignment,
        &NetworkModel::default(),
    )
    .unwrap_or_else(|e| panic!("{} mapping failed to execute: {e}", c.name));

    // (a) Numeric correctness: within 1e-10 of the sequential factor —
    // and actually bit-identical, which implies it.
    let seq = numeric::cholesky(&c.a, &c.factor).expect("sequential factorization");
    for j in 0..seq.n() {
        assert!(
            (report.factor.diag(j) - seq.diag(j)).abs() <= 1e-10,
            "{}: diagonal {j} deviates",
            c.name
        );
        for (e, (&i, m)) in seq
            .col_rows(j)
            .iter()
            .zip(report.factor.col_vals(j))
            .enumerate()
        {
            let s = seq.col_vals(j)[e];
            assert!(
                (m - s).abs() <= 1e-10,
                "{}: L({i},{j}) deviates: {m} vs {s}",
                c.name
            );
        }
    }
    assert_eq!(report.factor, seq, "{}: factor not bit-identical", c.name);

    // (b) Observed traffic equals the analytic prediction exactly:
    // total, per processor, and per processor pair.
    let predicted = simulate::data_traffic(&c.factor, &c.partition, &c.assignment);
    let observed = report.traffic_report();
    assert_eq!(observed.total, predicted.total, "{}: total", c.name);
    assert_eq!(
        observed.per_proc, predicted.per_proc,
        "{}: per-proc",
        c.name
    );
    assert_eq!(
        observed.pair_matrix, predicted.pair_matrix,
        "{}: pair matrix",
        c.name
    );
    assert_eq!(observed, predicted);

    // Observed work equals the analytic work distribution.
    assert_eq!(
        report.work_report(),
        simulate::work_distribution(&c.partition, &c.assignment),
        "{}: work",
        c.name
    );

    // (c) The network model yields a positive, re-evaluable estimate.
    assert!(report.estimated_time > 0.0);
    assert_eq!(
        report.estimate(&report.network),
        report.estimated_time,
        "{}: estimate not reproducible",
        c.name
    );
}

#[test]
fn lap30_block_mapping_cross_validates() {
    check_case(&lap30_case(Scheme::Block, 16));
}

#[test]
fn lap30_wrap_mapping_cross_validates() {
    check_case(&lap30_case(Scheme::Wrap, 16));
}

#[test]
fn pipeline_backend_reports_match_analytic_phase() {
    // The same cross-validation through the Pipeline wiring: the
    // execution report's observed traffic/work must equal the analytic
    // phase's reports carried in the same result.
    for scheme in [Scheme::Block, Scheme::Wrap] {
        let r = Pipeline::new(gen::paper::lap30().pattern)
            .scheme(scheme)
            .processors(16)
            .backend(ExecutionBackend::MessagePassing(NetworkModel::default()))
            .run();
        let exec = r.execution.as_ref().expect("message-passing backend ran");
        assert_eq!(exec.traffic_report(), r.traffic, "{scheme:?}");
        assert_eq!(exec.work_report(), r.work, "{scheme:?}");
    }
}
