//! Chaos testing of the solver service's resilience layer: seeded fault
//! plans and concurrent load against `SolverService`, plus
//! kill-and-restart drills for the warm-restart artifact store.
//!
//! The contract under test, for *every* drill:
//!
//! * a request that completes is **correct** — its factor is
//!   bit-identical to a fresh from-scratch `Pipeline` plan factored
//!   sequentially, no matter how many retries, failovers, or store
//!   reloads produced it (resilience costs performance, never bits);
//! * a request that fails does so with a **typed** `ServeError` carrying
//!   the structured backend diagnostics (the full `MpError`, fault trace
//!   included), never a flattened string and never a panic;
//! * the suite terminates — deadlines, bounded retry, and the runtime's
//!   watchdog mean no fault schedule can hang the service;
//! * a killed-and-restarted service reloads its artifact store and
//!   serves previously-seen patterns with **zero cold rebuilds**.

use spfactor::matrix::gen;
use spfactor::mp::CrashPlan;
use spfactor::{numeric, FaultPlan, MpError, NetworkModel, Pipeline};
use spfactor_serve::{
    ExecutionKernel, KernelKind, ResilienceConfig, ServeConfig, ServeError, SolveRequest,
    SolverService, Ticket, ValueBatch,
};
use std::path::PathBuf;
use std::time::Duration;

const NPROCS: usize = 3;

/// A small paper-style request on the message-passing kernel.
fn mp_request(cols: usize, rows: usize, seed: u64) -> SolveRequest {
    let pattern = gen::lap9(cols, rows);
    let n = pattern.n();
    let values = gen::spd_from_pattern(&pattern, seed);
    let rhs: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    SolveRequest::new(pattern)
        .processors(NPROCS)
        .kernel(ExecutionKernel::MessagePassing(NetworkModel::default()))
        .batch(ValueBatch::new(values).with_rhs(rhs))
}

/// The ground truth for a request: a fresh from-scratch `Pipeline` plan
/// (same front-end parameters) factored by the sequential reference
/// kernel.
fn reference_factor(req: &SolveRequest) -> numeric::NumericFactor {
    let plan = Pipeline::new(req.pattern.clone())
        .processors(req.nprocs)
        .try_plan()
        .expect("reference plan");
    let permuted = req.batches[0].values.permute(plan.permutation());
    numeric::cholesky(&permuted, plan.factor()).expect("reference factorization")
}

/// A crash plan that fires on every attempt: processor 0 dies before
/// running a single unit and announces it, so the runtime fails fast
/// with `ProcessorCrashed` no matter how the retry reseeds the plan.
fn always_crash() -> FaultPlan {
    FaultPlan {
        crash: Some(CrashPlan {
            proc: 0,
            after_units: 0,
            announce: true,
        }),
        ..FaultPlan::none()
    }
}

/// Fast-failing retry/backoff knobs so drills spend time asserting, not
/// sleeping.
fn fast_resilience() -> ResilienceConfig {
    ResilienceConfig {
        max_retries: 1,
        backoff_base: Duration::from_micros(100),
        backoff_max: Duration::from_millis(1),
        ..ResilienceConfig::default()
    }
}

/// A unique, pre-cleaned scratch directory for store drills.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("spfactor-chaos-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn network_chaos_under_concurrent_load_serves_identical_bits() {
    // Network-level faults only (drops, duplicates, delays, reorders —
    // no crashes): the runtime's own retry absorbs them, so every
    // request must complete on the requested kernel, and completing
    // means bit-identical factors under every seed.
    let service = SolverService::start(ServeConfig {
        workers: 4,
        queue_depth: 64,
        resilience: fast_resilience(),
        ..ServeConfig::default()
    });
    let base = mp_request(5, 5, 11);
    let reference = reference_factor(&base);

    let tickets: Vec<Ticket> = (0..8)
        .map(|k| {
            let plan = FaultPlan {
                crash: None,
                stall: None,
                ..FaultPlan::chaos(0xFACADE + k)
            };
            service.submit(base.clone().fault_plan(plan)).unwrap()
        })
        .collect();
    for t in tickets {
        let resp = t.wait().expect("network faults alone must never fail");
        assert_eq!(resp.served_by, KernelKind::MessagePassing);
        assert!(!resp.degraded(), "no crash, no degradation");
        assert_eq!(
            resp.batches[0].factor, reference,
            "bits drifted under chaos"
        );
    }
    assert_eq!(service.completed(), 8);
    assert_eq!(service.degraded(), 0);
}

#[test]
fn announced_crash_degrades_down_the_chain_bit_identically() {
    let service = SolverService::start(ServeConfig {
        resilience: fast_resilience(),
        ..ServeConfig::default()
    });
    let req = mp_request(5, 5, 7).fault_plan(always_crash());
    let reference = reference_factor(&req);

    let resp = service
        .solve(req)
        .expect("failover must rescue the request");
    // Degraded exactly one step: mp was retried, then abandoned.
    assert!(resp.degraded());
    assert_eq!(resp.served_by, KernelKind::BlockParallel);
    assert_eq!(resp.failover.len(), 1);
    let step = &resp.failover[0];
    assert_eq!(step.kernel, KernelKind::MessagePassing);
    assert_eq!(step.attempts, 2, "one attempt + max_retries retries");
    // The abandoned step carries the structured backend error, fault
    // trace included — not a flattened string.
    match &step.error {
        ServeError::Kernel { kernel, error } => {
            assert_eq!(*kernel, KernelKind::MessagePassing);
            match error.as_ref() {
                MpError::ProcessorCrashed { proc, trace } => {
                    assert_eq!(*proc, 0);
                    assert_eq!(trace.crashed, vec![0]);
                }
                other => panic!("unexpected backend error shape: {other}"),
            }
        }
        other => panic!("expected ServeError::Kernel, got {other}"),
    }
    // Degradation cost performance, not bits.
    assert_eq!(resp.batches[0].factor, reference);
    assert_eq!(service.degraded(), 1);
}

#[test]
fn failover_disabled_surfaces_the_typed_kernel_error() {
    let service = SolverService::start(ServeConfig {
        resilience: ResilienceConfig {
            failover: false,
            ..fast_resilience()
        },
        ..ServeConfig::default()
    });
    let err = service
        .solve(mp_request(5, 4, 3).fault_plan(always_crash()))
        .expect_err("with failover off the crash must surface");
    match err {
        ServeError::Kernel { kernel, error } => {
            assert_eq!(kernel, KernelKind::MessagePassing);
            assert!(matches!(
                error.as_ref(),
                MpError::ProcessorCrashed { proc: 0, .. }
            ));
        }
        other => panic!("expected ServeError::Kernel, got {other}"),
    }
    assert_eq!(service.completed(), 0);
}

#[test]
fn breaker_opens_after_consecutive_failures_and_skips_the_kernel() {
    let service = SolverService::start(ServeConfig {
        resilience: ResilienceConfig {
            max_retries: 0,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(3600),
            ..fast_resilience()
        },
        ..ServeConfig::default()
    });
    let crashing = mp_request(5, 5, 9).fault_plan(always_crash());

    // Two consecutive mp failures trip the breaker (both requests are
    // still rescued by failover).
    for _ in 0..2 {
        let resp = service.solve(crashing.clone()).unwrap();
        assert!(resp.degraded());
        assert_eq!(resp.failover[0].attempts, 1, "max_retries 0: one attempt");
    }
    assert_eq!(
        service.breaker_state(KernelKind::MessagePassing),
        1.0,
        "breaker must be open"
    );

    // The third request — even a healthy one — is denied mp without an
    // attempt (the hour-long cooldown has not elapsed) and degrades with
    // a typed BreakerOpen step.
    let resp = service.solve(mp_request(5, 5, 9)).unwrap();
    assert!(resp.degraded());
    assert_eq!(resp.served_by, KernelKind::BlockParallel);
    assert_eq!(resp.failover[0].attempts, 0, "denied without an attempt");
    assert!(matches!(
        resp.failover[0].error,
        ServeError::BreakerOpen {
            kernel: KernelKind::MessagePassing
        }
    ));
}

#[test]
fn half_open_probe_success_closes_the_breaker() {
    let service = SolverService::start(ServeConfig {
        resilience: ResilienceConfig {
            max_retries: 0,
            breaker_threshold: 1,
            breaker_cooldown: Duration::ZERO,
            ..fast_resilience()
        },
        ..ServeConfig::default()
    });
    // Trip the breaker with one crashing request.
    let resp = service
        .solve(mp_request(5, 5, 13).fault_plan(always_crash()))
        .unwrap();
    assert!(resp.degraded());
    assert_eq!(service.breaker_state(KernelKind::MessagePassing), 1.0);

    // Zero cooldown: the next request is the half-open probe. It is
    // healthy, so it runs on mp and its success closes the breaker.
    let resp = service.solve(mp_request(5, 5, 13)).unwrap();
    assert!(!resp.degraded());
    assert_eq!(resp.served_by, KernelKind::MessagePassing);
    assert_eq!(service.breaker_state(KernelKind::MessagePassing), 0.0);
}

#[test]
fn zero_deadline_fails_typed_at_the_queue_stage() {
    let service = SolverService::start(ServeConfig::default());
    let err = service
        .solve(mp_request(5, 5, 1).deadline(Duration::ZERO))
        .expect_err("a zero budget is blown at admission");
    match err {
        ServeError::DeadlineExceeded {
            stage,
            budget_ms,
            spent,
        } => {
            assert_eq!(stage.name(), "queue");
            assert_eq!(budget_ms, 0.0);
            assert!(spent.build_ms == 0.0 && spent.solve_ms == 0.0);
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    // The blown request never touched the cache.
    assert_eq!(service.cache_stats().misses, 0);
}

#[test]
fn default_deadline_from_config_applies_to_bare_requests() {
    let service = SolverService::start(ServeConfig {
        resilience: ResilienceConfig {
            default_deadline: Some(Duration::ZERO),
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    });
    assert!(matches!(
        service.solve(mp_request(5, 4, 2)),
        Err(ServeError::DeadlineExceeded { .. })
    ));
}

#[test]
fn killed_and_restarted_service_reloads_the_store_with_zero_cold_rebuilds() {
    let dir = scratch_dir("warm-restart");
    let reqs = [mp_request(5, 5, 21), mp_request(6, 4, 22)];
    let first_factors: Vec<numeric::NumericFactor> = {
        // First life: cold-builds both patterns and spills them.
        let service = SolverService::start(ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let factors = reqs
            .iter()
            .map(|r| {
                let resp = service.solve(r.clone()).unwrap();
                assert!(!resp.warm_start);
                resp.batches[0].factor.clone()
            })
            .collect();
        assert_eq!(service.cold_builds(), 2);
        let stats = service.store_stats().unwrap();
        assert_eq!((stats.loaded, stats.spilled), (0, 2));
        factors
        // The service is dropped here — the "kill".
    };

    // Second life over the same directory: both patterns come back from
    // disk, verified, with zero cold rebuilds and identical bits.
    let service = SolverService::start(ServeConfig {
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    for (req, expected) in reqs.iter().zip(&first_factors) {
        let resp = service.solve(req.clone()).unwrap();
        assert!(resp.warm_start, "first serve per pattern loads from disk");
        assert!(!resp.cache_hit);
        assert_eq!(&resp.batches[0].factor, expected, "reload changed bits");
        // Once resident, the cache serves it without touching the store.
        let again = service.solve(req.clone()).unwrap();
        assert!(again.cache_hit && !again.warm_start);
    }
    assert_eq!(service.cold_builds(), 0, "warm restart must not rebuild");
    let stats = service.store_stats().unwrap();
    assert_eq!((stats.loaded, stats.hits, stats.rejected), (2, 2, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_store_file_degrades_to_a_rebuild_never_a_wrong_answer() {
    let dir = scratch_dir("corrupt-spill");
    let req = mp_request(5, 5, 31);
    let reference = {
        let service = SolverService::start(ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        service.solve(req.clone()).unwrap().batches[0]
            .factor
            .clone()
    };

    // Truncate the spilled artifact mid-file: the restart's startup scan
    // must reject it (typed, counted) and the request must fall back to
    // a cold build that still produces the same bits.
    let spill = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("spfa"))
        .expect("one spilled artifact");
    let bytes = std::fs::read(&spill).unwrap();
    std::fs::write(&spill, &bytes[..bytes.len() / 2]).unwrap();

    let service = SolverService::start(ServeConfig {
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let resp = service.solve(req).unwrap();
    assert!(!resp.warm_start, "corrupt file must not warm-start");
    assert_eq!(resp.batches[0].factor, reference);
    assert_eq!(service.cold_builds(), 1);
    assert!(service.store_stats().unwrap().rejected >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fixed-seed smoke case for `scripts/verify.sh`: one crash-failover
/// drill and one warm-restart drill, end to end.
#[test]
fn chaos_serve_smoke() {
    let dir = scratch_dir("smoke");
    let req = mp_request(5, 5, 41).fault_plan(always_crash());
    let reference = reference_factor(&req);
    {
        let service = SolverService::start(ServeConfig {
            store_dir: Some(dir.clone()),
            resilience: fast_resilience(),
            ..ServeConfig::default()
        });
        let resp = service.solve(req.clone()).unwrap();
        assert!(resp.degraded());
        assert_eq!(resp.batches[0].factor, reference);
    }
    let service = SolverService::start(ServeConfig {
        store_dir: Some(dir.clone()),
        resilience: fast_resilience(),
        ..ServeConfig::default()
    });
    let resp = service.solve(req).unwrap();
    assert!(resp.warm_start);
    assert_eq!(resp.batches[0].factor, reference);
    assert_eq!(service.cold_builds(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
