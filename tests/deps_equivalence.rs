//! Pinned equivalence: every dependency-analysis engine must return
//! bit-identical graphs on every paper matrix, for every thread count.
//!
//! The element engine is the oracle — it replays each update and scaling
//! operation and classifies it one at a time. The sweep engines derive
//! the same graph in closed form from per-column ownership segmentations,
//! so any divergence here means the segment algebra (or the parallel
//! cluster split / merge) mislabels an operation. Equality is full
//! [`spfactor::DepGraph`] equality: predecessor and successor *sets* plus
//! the exact operation count in each of the paper's ten categories.

use proptest::prelude::*;
use spfactor::partition::{build_dependencies, dependencies, sweep_dependencies};
use spfactor::{DepsEngine, Pipeline, PipelineResult, Scheme};

/// Thread counts the parallel driver is pinned at, bracketing the
/// cluster-range splitter: serial, even, odd, and more threads than most
/// small matrices have clusters.
const THREADS: [usize; 4] = [1, 2, 5, 16];

fn assert_engines_agree(result: &PipelineResult, name: &str) {
    let oracle = dependencies(&result.factor, &result.partition);
    assert_eq!(
        oracle, result.deps,
        "{name}: pipeline deps diverge from oracle"
    );
    for engine in [DepsEngine::Sweep, DepsEngine::SweepParallel] {
        let got = build_dependencies(engine, &result.factor, &result.partition);
        assert_eq!(got, oracle, "{name}: {engine:?} diverges from element");
    }
    for threads in THREADS {
        let got = sweep_dependencies(&result.factor, &result.partition, threads);
        assert_eq!(got, oracle, "{name}: sweep T={threads} diverges");
    }
}

#[test]
fn deps_engines_identical_on_all_paper_matrices() {
    for m in spfactor::matrix::gen::paper::all() {
        for grain in [4usize, 25] {
            let r = Pipeline::new(m.pattern.clone()).grain(grain).run();
            assert_engines_agree(&r, &format!("{} g={grain}", m.name));
        }
    }
}

#[test]
fn deps_engines_identical_on_wrap_scheme() {
    for m in spfactor::matrix::gen::paper::all() {
        let r = Pipeline::new(m.pattern.clone()).scheme(Scheme::Wrap).run();
        assert_engines_agree(&r, &format!("{} wrap", m.name));
    }
}

#[test]
fn deps_engines_identical_with_relaxed_clusters() {
    // Zero relaxation widens strips (explicit zeros inside triangles),
    // stressing segments whose rows are not all stored entries.
    let m = spfactor::matrix::gen::paper::lap30();
    let mut params = spfactor::PartitionParams::with_grain(4);
    params.relax_zeros = 2;
    params.min_cluster_width = 2;
    let r = Pipeline::new(m.pattern).params(params).run();
    assert_engines_agree(&r, "lap30 relaxed");
}

#[test]
fn deps_engines_identical_on_scaled_grid() {
    let grid = spfactor::matrix::gen::paper::lap_grid(24);
    let r = Pipeline::new(grid.pattern).grain(25).run();
    assert_engines_agree(&r, grid.name);
}

/// Random connected-ish symmetric pattern: a random geometric graph of
/// `n` points with mean degree `deg` (the strategy of
/// `tests/property_pipeline.rs`).
fn arb_pattern() -> impl Strategy<Value = spfactor::SymmetricPattern> {
    (5usize..100, 2.0f64..8.0, any::<u64>()).prop_map(|(n, deg, seed)| {
        let r = (deg / (std::f64::consts::PI * n as f64)).sqrt();
        spfactor::matrix::gen::random_geometric(n, r, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_deps_engines_agree(
        pattern in arb_pattern(),
        grain in 1usize..30,
        width in 1usize..8,
        relax in 0usize..3,
        threads in 1usize..9,
    ) {
        let mut params = spfactor::PartitionParams::with_grain(grain);
        params.min_cluster_width = width;
        params.relax_zeros = relax;
        let r = Pipeline::new(pattern).params(params).run();
        let oracle = dependencies(&r.factor, &r.partition);
        prop_assert_eq!(
            &oracle,
            &r.deps,
            "pipeline default diverges from oracle"
        );
        let swept = sweep_dependencies(&r.factor, &r.partition, threads);
        prop_assert_eq!(&swept, &oracle, "sweep T={} diverges", threads);
    }
}
