//! Chaos testing of the message-passing runtime through the full
//! pipeline: random fault schedules (drops, duplicates, delays,
//! reorderings, stalls, crashes) against small paper-style problems.
//!
//! The contract under test, for *every* fault schedule:
//!
//! * a run that completes is **correct** — its factor is bit-identical to
//!   the fault-free execution (hence to the sequential Cholesky) and its
//!   observed traffic and work equal the analytic simulator's predictions
//!   exactly;
//! * a run that fails does so with a **typed error**, and only when a
//!   crash was injected;
//! * the suite terminates — no fault schedule can hang the runtime
//!   (bounded retry plus the run watchdog), and no schedule panics.

use proptest::prelude::*;
use spfactor::mp::{CrashPlan, StallPlan};
use spfactor::{
    matrix::gen, numeric, ExecutionBackend, FaultPlan, MpError, NetworkModel, Pipeline, Scheme,
    SpfactorError,
};
use std::time::Duration;

fn pipeline(scheme: Scheme, nprocs: usize) -> Pipeline {
    Pipeline::new(gen::lap9(5, 5))
        .grain(3)
        .processors(nprocs)
        .scheme(scheme)
        .backend(ExecutionBackend::MessagePassing(NetworkModel::default()))
}

/// Fault-free reference run with the same parameters.
fn clean(scheme: Scheme, nprocs: usize) -> spfactor::PipelineResult {
    pipeline(scheme, nprocs).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Network-level chaos only (no crashes): the run must always
    /// complete, and completing means exact agreement with the clean run
    /// and the analytic simulator.
    #[test]
    fn network_chaos_always_completes_correctly(
        seed in any::<u64>(),
        drop in 0.0f64..0.9,
        duplicate in 0.0f64..0.5,
        delay in 0.0f64..0.5,
        reorder in 0.0f64..0.5,
        wrap in any::<bool>(),
        nprocs in 1usize..5,
    ) {
        let scheme = if wrap { Scheme::Wrap } else { Scheme::Block };
        let plan = FaultPlan {
            seed,
            drop,
            duplicate,
            delay,
            reorder,
            ..FaultPlan::chaos(seed)
        };
        let r = pipeline(scheme, nprocs)
            .fault_plan(plan)
            .try_run()
            .expect("network faults alone must never fail a run");
        let exec = r.execution.as_ref().expect("message-passing backend");

        // Exact agreement with the analytic simulator.
        prop_assert_eq!(&exec.traffic_report(), &r.traffic);
        prop_assert_eq!(&exec.work_report(), &r.work);

        // Bit-identical factor versus the fault-free run.
        let reference = clean(scheme, nprocs);
        let ref_exec = reference.execution.as_ref().unwrap();
        prop_assert_eq!(&exec.factor, &ref_exec.factor);
        prop_assert_eq!(&r.traffic, &reference.traffic);
        prop_assert_eq!(&r.work, &reference.work);
    }

    /// Full chaos including stalls and announced crashes: every outcome is
    /// either a correct completion or a typed execution error, and errors
    /// occur only when a crash was injected.
    #[test]
    fn any_fault_schedule_yields_correctness_or_typed_error(
        seed in any::<u64>(),
        drop in 0.0f64..0.8,
        crash_proc in 0usize..4,
        after_units in 0usize..40,
        inject_crash in any::<bool>(),
        stall_every in 1usize..8,
        wrap in any::<bool>(),
        nprocs in 2usize..5,
    ) {
        let scheme = if wrap { Scheme::Wrap } else { Scheme::Block };
        let plan = FaultPlan {
            drop,
            stall: Some(StallPlan {
                proc: crash_proc % nprocs,
                every_units: stall_every,
                pause: Duration::from_micros(200),
            }),
            crash: inject_crash.then(|| CrashPlan {
                proc: crash_proc % nprocs,
                after_units,
                announce: true,
            }),
            ..FaultPlan::chaos(seed)
        };
        match pipeline(scheme, nprocs).fault_plan(plan).try_run() {
            Ok(r) => {
                let exec = r.execution.as_ref().expect("message-passing backend");
                prop_assert_eq!(&exec.traffic_report(), &r.traffic);
                prop_assert_eq!(&exec.work_report(), &r.work);
                let reference = clean(scheme, nprocs);
                prop_assert_eq!(
                    &exec.factor,
                    &reference.execution.as_ref().unwrap().factor
                );
            }
            Err(SpfactorError::Execution(e)) => {
                // Only a crash can fail a run, and an announced crash
                // surfaces as exactly ProcessorCrashed with the crashed
                // processor in the fault trace.
                prop_assert!(inject_crash, "error without a crash injected: {e}");
                match &e {
                    MpError::ProcessorCrashed { proc, trace } => {
                        prop_assert_eq!(*proc, crash_proc % nprocs);
                        prop_assert_eq!(&trace.crashed, &vec![crash_proc % nprocs]);
                    }
                    other => prop_assert!(false, "unexpected error shape: {other}"),
                }
            }
            Err(other) => prop_assert!(false, "non-execution error: {other}"),
        }
    }
}

/// Fixed-seed smoke case for `scripts/verify.sh`: one heavy chaos plan on
/// both mapping schemes, checked against the sequential factorization.
#[test]
fn chaos_smoke() {
    for (scheme, nprocs) in [(Scheme::Block, 4), (Scheme::Wrap, 3)] {
        let r = pipeline(scheme, nprocs)
            .fault_plan(FaultPlan::chaos(0xC0FFEE))
            .try_run()
            .expect("chaos smoke run must complete");
        let exec = r.execution.as_ref().unwrap();
        assert!(!exec.faults.is_quiet(), "chaos plan injected nothing");
        assert_eq!(exec.traffic_report(), r.traffic);
        assert_eq!(exec.work_report(), r.work);

        // The executed factor matches a sequential factorization of the
        // same synthesized SPD matrix (the pipeline's fixed value seed),
        // bit for bit.
        let permuted = gen::lap9(5, 5).permute(&r.permutation);
        let a = gen::spd_from_pattern(&permuted, 42);
        let seq = numeric::cholesky(&a, &r.factor).expect("sequential factorization");
        assert_eq!(exec.factor, seq, "{scheme:?}: factor deviates under chaos");
    }
}

/// A crash scheduled beyond the end of the victim's program never fires:
/// the run completes cleanly even with the crash armed.
#[test]
fn crash_beyond_program_end_is_harmless() {
    let r = pipeline(Scheme::Block, 3)
        .fault_plan(FaultPlan {
            crash: Some(CrashPlan {
                proc: 1,
                after_units: 100_000,
                announce: true,
            }),
            ..FaultPlan::none()
        })
        .try_run()
        .expect("unfired crash must not fail the run");
    let exec = r.execution.as_ref().unwrap();
    assert!(exec.faults.crashed.is_empty());
    assert_eq!(exec.traffic_report(), r.traffic);
}
