//! The ordering-engine contract: [`OrderEngine::Compressed`] must
//! produce *valid* permutations whose fill stays in the same regime as
//! the direct engine's, bit-deterministically, on arbitrary SPD
//! structures — not just the paper matrices its unit tests cover.

use proptest::prelude::*;
use spfactor::order::mmd::elimination_fill;
use spfactor::order::{order_with_engine, OrderEngine};
use spfactor::{Ordering, Pipeline, SymmetricPattern};

/// Random connected-ish symmetric pattern: a random geometric graph of
/// `n` points with mean degree `deg`.
fn arb_pattern() -> impl Strategy<Value = SymmetricPattern> {
    (5usize..120, 2.0f64..8.0, any::<u64>()).prop_map(|(n, deg, seed)| {
        let r = (deg / (std::f64::consts::PI * n as f64)).sqrt();
        spfactor::matrix::gen::random_geometric(n, r, seed)
    })
}

/// Fill (new strict-lower entries) of eliminating `pattern` under `perm`.
fn fill_under(pattern: &SymmetricPattern, perm: &spfactor::Permutation) -> usize {
    elimination_fill(&pattern.permute(perm))
}

/// The compressed engine targets the same fill regime as the direct
/// engine; it is bit-identical when nothing compresses, and on
/// compressible graphs the supervariable granularity can shift fill a
/// little either way. Pinned generously: within 30% plus a small
/// additive slack for tiny problems.
fn assert_fill_in_regime(label: &str, direct: usize, compressed: usize) {
    let bound = direct + direct * 3 / 10 + 16;
    assert!(
        compressed <= bound,
        "{label}: compressed fill {compressed} > bound {bound} (direct {direct})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_compressed_is_valid_and_fill_stays_in_regime(
        pattern in arb_pattern(),
        delta in 0usize..3,
        amd in any::<bool>(),
    ) {
        let method = if amd {
            Ordering::ApproximateMinimumDegree
        } else {
            Ordering::MultipleMinimumDegree { delta }
        };
        let direct = order_with_engine(&pattern, method, OrderEngine::Direct);
        let compressed = order_with_engine(&pattern, method, OrderEngine::Compressed);
        // A permutation: every column exactly once.
        prop_assert_eq!(compressed.len(), pattern.n());
        let mut seen = vec![false; pattern.n()];
        for j in 0..pattern.n() {
            let o = compressed.old_of(j);
            prop_assert!(!seen[o], "column {o} appears twice");
            seen[o] = true;
        }
        // Same fill regime as the direct engine.
        let df = fill_under(&pattern, &direct);
        let cf = fill_under(&pattern, &compressed);
        assert_fill_in_regime("random pattern", df, cf);
    }

    #[test]
    fn prop_compressed_is_deterministic(pattern in arb_pattern(), delta in 0usize..3) {
        let method = Ordering::MultipleMinimumDegree { delta };
        let a = order_with_engine(&pattern, method, OrderEngine::Compressed);
        let b = order_with_engine(&pattern, method, OrderEngine::Compressed);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}

#[test]
fn compressed_fill_in_regime_on_lap_grids() {
    for side in [8, 15, 30] {
        let m = spfactor::matrix::gen::paper::lap_grid(side);
        let direct = order_with_engine(&m.pattern, Ordering::paper_default(), OrderEngine::Direct);
        let compressed = order_with_engine(
            &m.pattern,
            Ordering::paper_default(),
            OrderEngine::Compressed,
        );
        // lap9 grids have no indistinguishable columns, so the engines
        // agree bit for bit (the strongest form of "same regime").
        assert_eq!(
            direct.as_slice(),
            compressed.as_slice(),
            "lap_grid({side}): engines diverged"
        );
        let df = fill_under(&m.pattern, &direct);
        let cf = fill_under(&m.pattern, &compressed);
        assert_fill_in_regime(&format!("lap_grid({side})"), df, cf);
    }
}

#[test]
fn compressed_is_deterministic_across_thread_counts() {
    // The compressed engine is sequential; determinism must survive
    // whatever thread pool the surrounding pipeline uses. Run the same
    // ordering from many threads at once and against the
    // thread-count-sensitive pipeline engines.
    let m = spfactor::matrix::gen::paper::lap_grid(20);
    let reference = order_with_engine(
        &m.pattern,
        Ordering::paper_default(),
        OrderEngine::Compressed,
    );
    let results: Vec<_> = std::thread::scope(|s| {
        (0..4)
            .map(|_| {
                let pattern = &m.pattern;
                s.spawn(move || {
                    order_with_engine(pattern, Ordering::paper_default(), OrderEngine::Compressed)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("ordering thread"))
            .collect()
    });
    for r in &results {
        assert_eq!(r.as_slice(), reference.as_slice());
    }
    // Full pipeline: parallel engines must not perturb the ordering.
    let base = Pipeline::new(m.pattern.clone())
        .processors(4)
        .order_engine(OrderEngine::Compressed)
        .run();
    let parallel = Pipeline::new(m.pattern.clone())
        .processors(4)
        .order_engine(OrderEngine::Compressed)
        .engine(spfactor::SimulateEngine::BlockParallel)
        .deps_engine(spfactor::DepsEngine::SweepParallel)
        .run();
    assert_eq!(base.permutation.as_slice(), reference.as_slice());
    assert_eq!(parallel.permutation.as_slice(), reference.as_slice());
    assert_eq!(base.traffic, parallel.traffic);
    assert_eq!(base.work, parallel.work);
}

#[test]
fn compressed_pipeline_matches_direct_on_compressible_input() {
    // A finite-element grid compresses; the full pipeline must still
    // produce a consistent result (work conservation, fill regime).
    let p = spfactor::matrix::gen::grid5_fe(9, 9);
    let direct = Pipeline::new(p.clone()).processors(4).run();
    let compressed = Pipeline::new(p)
        .processors(4)
        .order_engine(OrderEngine::Compressed)
        .run();
    assert_eq!(direct.work.total, compressed.work.total);
    let d = direct.factor.num_entries() as f64;
    let c = compressed.factor.num_entries() as f64;
    assert!(
        (c - d).abs() / d <= 0.05,
        "factor entries diverged: direct {d}, compressed {c}"
    );
}
