//! End-to-end numerical validation on the paper's test set: SPD systems
//! with the five matrices' structures are factored (sequentially and in
//! parallel) and solved, closing the loop from structure to numbers.

use spfactor::matrix::gen;
use spfactor::numeric::{parallel::cholesky_parallel, solve, SpdSolver};
use spfactor::{Ordering, SymbolicFactor};

#[test]
fn solve_all_paper_matrices() {
    for m in gen::paper::all() {
        let a = gen::spd_from_pattern(&m.pattern, 7);
        let n = a.n();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();
        let b = a.mul_vec(&x_true);
        let s = SpdSolver::new(&a, Ordering::paper_default())
            .unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let x = s.solve(&b);
        let r = solve::residual_norm(&a, &x, &b);
        let bn = b.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(
            r / bn < 1e-10,
            "{}: relative residual {} too large",
            m.name,
            r / bn
        );
    }
}

#[test]
fn parallel_factorization_matches_sequential_on_paper_set() {
    // The parallel executor drives the column-level dependency DAG — the
    // refinement target of the paper's block DAG — and must agree
    // bit-for-bit with the sequential left-looking code.
    for m in [gen::paper::dwt512(), gen::paper::lap30()] {
        let perm = spfactor::order::order(&m.pattern, Ordering::paper_default());
        let a = gen::spd_from_pattern(&m.pattern.permute(&perm), 3);
        let f = SymbolicFactor::from_pattern(&a.pattern());
        let seq = spfactor::numeric::cholesky(&a, &f).unwrap();
        let par = cholesky_parallel(&a, &f, 8).unwrap();
        assert_eq!(seq, par, "{}", m.name);
    }
}

#[test]
fn unit_block_dag_is_consistent_with_column_dag() {
    // If unit U (owning elements of column set C_U) depends on unit V,
    // then some column of C_U depends on a column of C_V in the column
    // DAG or shares data with it — concretely: the unit DAG must order
    // every cross-unit update correctly. We verify by checking that a
    // topological order of the unit DAG induces a valid element
    // computation order: for every update op, both sources' units come
    // no later than the target's unit in the topological order (or equal).
    let m = gen::paper::dwt512();
    let r = spfactor::Pipeline::new(m.pattern.clone()).grain(4).run();
    let n = r.partition.num_units();
    // Topological ranks via Kahn.
    let mut indeg: Vec<usize> = (0..n).map(|u| r.deps.preds(u).len()).collect();
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
    let mut rank = vec![usize::MAX; n];
    let mut next = 0;
    while let Some(u) = queue.pop_front() {
        rank[u] = next;
        next += 1;
        for &s in r.deps.succs(u) {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push_back(s as usize);
            }
        }
    }
    assert_eq!(next, n, "unit DAG must be acyclic");
    let owner = r.partition.owner_map();
    let eid = |i: usize, j: usize| r.factor.entry_id(i, j).unwrap();
    spfactor::symbolic::ops::for_each_update(&r.factor, |op| {
        let t = owner[eid(op.i, op.j)] as usize;
        for s in [
            owner[eid(op.i, op.k)] as usize,
            owner[eid(op.j, op.k)] as usize,
        ] {
            if s != t {
                assert!(
                    rank[s] < rank[t],
                    "unit {s} must precede unit {t} (op {op:?})"
                );
            }
        }
    });
}

#[test]
fn paper_schedule_executes_numerically_on_lap30() {
    // The strongest end-to-end check in the repository: build the paper's
    // partition, dependency graph, and block allocation for LAP30 at
    // P = 16 and execute that schedule numerically on 16 threads. Any
    // missing dependency edge would surface as a bitwise mismatch
    // against the sequential factorization.
    let m = gen::paper::lap30();
    let r = spfactor::Pipeline::new(m.pattern.clone())
        .grain(4)
        .processors(16)
        .run();
    let a = gen::spd_from_pattern(&m.pattern.permute(&r.permutation), 99);
    let seq = spfactor::numeric::cholesky(&a, &r.factor).unwrap();
    let par = spfactor::numeric::cholesky_block_parallel(
        &a,
        &r.factor,
        &r.partition,
        &r.deps,
        &r.assignment,
    )
    .unwrap();
    assert_eq!(seq, par);
}

#[test]
fn timed_simulation_runs_on_real_factorization_schedule() {
    // Smoke-test the machine model against a real matrix at several
    // processor counts: speedup must be monotone-ish and bounded by P.
    let m = gen::paper::dwt512();
    let r4 = spfactor::Pipeline::new(m.pattern.clone())
        .grain(4)
        .processors(4)
        .run();
    let model = spfactor::simulate::timed::CommModel {
        latency: 1.0,
        per_element: 0.1,
        per_work: 1.0,
    };
    let t = spfactor::simulate::timed::simulate_timed(
        &r4.factor,
        &r4.partition,
        &r4.deps,
        &r4.assignment,
        &model,
    );
    assert!(t.speedup > 1.0, "no speedup on 4 procs: {}", t.speedup);
    assert!(t.speedup <= 4.0 + 1e-9);
}
