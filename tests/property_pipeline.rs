//! Property-based tests over randomly generated sparse structures: the
//! pipeline's conservation laws and geometric invariants must hold for
//! *any* symmetric pattern, not just the paper's test set.

use proptest::prelude::*;
use spfactor::{Pipeline, Scheme, SimulateEngine};

/// Random connected-ish symmetric pattern: a random geometric graph of
/// `n` points with mean degree `deg`.
fn arb_pattern() -> impl Strategy<Value = spfactor::SymmetricPattern> {
    (5usize..120, 2.0f64..8.0, any::<u64>()).prop_map(|(n, deg, seed)| {
        let r = (deg / (std::f64::consts::PI * n as f64)).sqrt();
        spfactor::matrix::gen::random_geometric(n, r, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_block_pipeline_invariants(
        pattern in arb_pattern(),
        grain in 1usize..40,
        width in 1usize..10,
        nprocs in 1usize..12,
    ) {
        let r = Pipeline::new(pattern)
            .grain(grain)
            .min_cluster_width(width)
            .processors(nprocs)
            .run();
        // Ownership covers every factor entry exactly once.
        let owned: usize = r.partition.units.iter().map(|u| u.elements).sum();
        prop_assert_eq!(owned, r.factor.num_entries());
        // Work conservation.
        prop_assert_eq!(r.work.total, r.factor.paper_work());
        prop_assert_eq!(r.work.per_proc.iter().sum::<usize>(), r.work.total);
        // Traffic per-processor sums to the total; zero on one processor.
        prop_assert_eq!(r.traffic.per_proc.iter().sum::<usize>(), r.traffic.total);
        if nprocs == 1 {
            prop_assert_eq!(r.traffic.total, 0);
        }
        // Every unit has a valid processor.
        prop_assert!(r.assignment.proc_of_unit.iter().all(|&p| (p as usize) < nprocs));
        // Δ and efficiency are consistent.
        let e = r.work.efficiency();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&e));
        if r.work.total > 0 {
            prop_assert!((e * (1.0 + r.work.imbalance()) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prop_wrap_and_block_work_totals_agree(
        pattern in arb_pattern(),
        nprocs in 1usize..10,
    ) {
        let b = Pipeline::new(pattern.clone()).processors(nprocs).run();
        let w = Pipeline::new(pattern).scheme(Scheme::Wrap).processors(nprocs).run();
        prop_assert_eq!(b.work.total, w.work.total);
    }

    #[test]
    fn prop_simulate_engines_agree(
        pattern in arb_pattern(),
        grain in 1usize..30,
        nprocs in 1usize..12,
        wrap in any::<bool>(),
    ) {
        // The block closed-form engines must reproduce the element
        // oracle bit for bit on arbitrary SPD structures, under both
        // mapping schemes and arbitrary grains.
        let scheme = if wrap { Scheme::Wrap } else { Scheme::Block };
        let base = Pipeline::new(pattern.clone())
            .scheme(scheme)
            .grain(grain)
            .processors(nprocs)
            .run();
        for engine in [SimulateEngine::Block, SimulateEngine::BlockParallel] {
            let r = Pipeline::new(pattern.clone())
                .scheme(scheme)
                .grain(grain)
                .processors(nprocs)
                .engine(engine)
                .run();
            prop_assert_eq!(&r.traffic, &base.traffic, "{:?} traffic", engine);
            prop_assert_eq!(&r.work, &base.work, "{:?} work", engine);
        }
    }

    #[test]
    fn prop_unit_dag_is_acyclic(pattern in arb_pattern(), grain in 1usize..30) {
        let r = Pipeline::new(pattern).grain(grain).run();
        let n = r.partition.num_units();
        let mut indeg: Vec<usize> = (0..n).map(|u| r.deps.preds(u).len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &s in r.deps.succs(u) {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s as usize);
                }
            }
        }
        prop_assert_eq!(seen, n);
    }

    #[test]
    fn prop_numeric_solve_residual(
        pattern in arb_pattern(),
        seed in any::<u64>(),
    ) {
        use spfactor::numeric::{solve, SpdSolver};
        let a = spfactor::matrix::gen::spd_from_pattern(&pattern, seed);
        let n = a.n();
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        let s = SpdSolver::new(&a, spfactor::Ordering::paper_default()).unwrap();
        let x = s.solve(&b);
        let bn = b.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(solve::residual_norm(&a, &x, &b) / bn < 1e-8);
    }

    #[test]
    fn prop_supernodal_matches_simplicial(
        pattern in arb_pattern(),
        seed in any::<u64>(),
        relax in 0usize..3,
    ) {
        use spfactor::numeric::{cholesky, cholesky_supernodal};
        let perm = spfactor::order::order(&pattern, spfactor::Ordering::paper_default());
        let a = spfactor::matrix::gen::spd_from_pattern(&pattern.permute(&perm), seed);
        let f = spfactor::SymbolicFactor::from_pattern(&a.pattern());
        let seq = cholesky(&a, &f).unwrap();
        let blocked = cholesky_supernodal(&a, &f, relax).unwrap();
        for j in 0..f.n() {
            prop_assert!((seq.diag(j) - blocked.diag(j)).abs() < 1e-9 * seq.diag(j).abs());
            for (x, y) in seq.col_vals(j).iter().zip(blocked.col_vals(j)) {
                prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
            }
        }
    }

    #[test]
    fn prop_factor_contains_matrix_structure(pattern in arb_pattern()) {
        let r = Pipeline::new(pattern.clone()).processors(2).run();
        // The permuted A must be contained in L's structure.
        let pa = pattern.permute(&r.permutation);
        for (i, j) in pa.iter_entries() {
            prop_assert!(r.factor.contains(i, j), "A entry ({i},{j}) missing");
        }
    }
}
