//! Timeline/report reconciliation: the event timeline captured by the
//! virtual-clock simulator must agree with the `TimedReport` it was
//! recorded alongside, the critical path must attribute the makespan,
//! every track must be overlap-free, and every export must validate as
//! a Chrome trace — on the paper's LAP30 under both mapping schemes and
//! both engines (timed simulator and mp runtime), and on arbitrary
//! random SPD structures and LAP grids.

use proptest::prelude::*;
use spfactor::trace::timeline::validate_chrome_trace;
use spfactor::trace::{json, EventKind, Timeline};
use spfactor::{ExecutionBackend, NetworkModel, Pipeline, Scheme, TimelineCapture};

/// Runs LAP30 with timeline capture and the mp backend under `scheme`.
fn run_lap30(scheme: Scheme, nprocs: usize) -> (spfactor::PipelineResult, TimelineCapture) {
    let m = spfactor::matrix::gen::paper::lap30();
    let result = Pipeline::new(m.pattern)
        .scheme(scheme)
        .grain(4)
        .processors(nprocs)
        .backend(ExecutionBackend::MessagePassing(NetworkModel::default()))
        .timeline(true)
        .run();
    let tl = result.timeline.clone().expect("timeline captured");
    (result, tl)
}

/// Unit slices per processor, as (start, end) sorted by start.
fn unit_slices(tl: &Timeline) -> Vec<Vec<(f64, f64)>> {
    let mut per_proc = vec![Vec::new(); tl.nprocs()];
    for ev in &tl.events {
        if let EventKind::UnitEnd {
            compute, transfer, ..
        } = ev.kind
        {
            per_proc[ev.proc as usize].push((ev.t - compute - transfer, ev.t));
        }
    }
    for track in &mut per_proc {
        track.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    per_proc
}

/// Every unit must start and end exactly once.
fn assert_units_covered(tl: &Timeline, num_units: usize, label: &str) {
    let mut starts = vec![0usize; num_units];
    let mut ends = vec![0usize; num_units];
    for ev in &tl.events {
        match ev.kind {
            EventKind::UnitStart { unit, .. } => starts[unit as usize] += 1,
            EventKind::UnitEnd { unit, .. } => ends[unit as usize] += 1,
            _ => {}
        }
    }
    for u in 0..num_units {
        assert_eq!(
            starts[u], 1,
            "{label}: unit {u} started {} times",
            starts[u]
        );
        assert_eq!(ends[u], 1, "{label}: unit {u} ended {} times", ends[u]);
    }
}

/// Unit slices on one processor never overlap (beyond rounding).
fn assert_no_overlap(tl: &Timeline, label: &str) {
    for (p, track) in unit_slices(tl).iter().enumerate() {
        for w in track.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-9 * (1.0 + w[0].1.abs()),
                "{label}: p{p} slices overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}

/// Parse + schema-validate an exported trace, returning the slice count.
fn assert_valid_chrome(trace: &str, label: &str) -> usize {
    let doc = json::parse(trace).unwrap_or_else(|e| panic!("{label}: invalid JSON: {e}"));
    let stats =
        validate_chrome_trace(&doc).unwrap_or_else(|e| panic!("{label}: invalid trace: {e}"));
    stats.slices
}

#[test]
fn lap30_virtual_clock_reconciles_exactly_under_both_schemes() {
    for scheme in [Scheme::Block, Scheme::Wrap] {
        let (result, tl) = run_lap30(scheme, 16);
        let label = format!("lap30 {scheme:?}");

        // Per-proc event durations sum to TimedReport.busy and the
        // latest event lands on the makespan (reconcile also rejects
        // overlapping unit slices per track).
        tl.simulated
            .reconcile(&tl.timed.busy, tl.timed.makespan, 1e-9)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let busy = tl.simulated.busy_per_proc();
        assert_eq!(busy.len(), tl.timed.busy.len(), "{label}: proc count");
        for (p, (got, want)) in busy.iter().zip(&tl.timed.busy).enumerate() {
            assert!(
                (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "{label}: p{p} busy {got} != {want}"
            );
        }

        // Critical-path attribution telescopes to the makespan.
        let cp = &tl.critical_path;
        let makespan = tl.timed.makespan;
        assert!(
            (cp.attributed() - makespan).abs() <= 1e-9 * (1.0 + makespan.abs()),
            "{label}: attributed {} vs makespan {makespan}",
            cp.attributed()
        );
        // Hops are causally ordered and stay within the schedule.
        for w in cp.hops.windows(2) {
            assert!(w[0].end <= w[1].end + 1e-12, "{label}: hops out of order");
        }
        for hop in &cp.hops {
            assert!(
                hop.end <= makespan * (1.0 + 1e-12),
                "{label}: hop past makespan"
            );
            assert!(hop.compute >= 0.0 && hop.transfer >= 0.0 && hop.wait >= 0.0);
        }
        // Per-processor usage partitions the makespan.
        for u in &cp.per_proc {
            let total = u.busy + u.blocked + u.idle;
            assert!(
                (total - makespan).abs() <= 1e-9 * (1.0 + makespan.abs()),
                "{label}: p{} usage {total} != makespan {makespan}",
                u.proc
            );
        }

        assert_units_covered(&tl.simulated, result.partition.num_units(), &label);
        assert_no_overlap(&tl.simulated, &label);
    }
}

#[test]
fn lap30_exports_validate_from_both_engines_under_both_schemes() {
    for scheme in [Scheme::Block, Scheme::Wrap] {
        let (result, tl) = run_lap30(scheme, 16);
        let num_units = result.partition.num_units();
        let label = format!("lap30 {scheme:?}");

        let sim_slices = assert_valid_chrome(&tl.simulated.to_chrome_trace(), &label);
        assert!(sim_slices >= num_units, "{label}: sim export lost slices");

        // The executed (mp runtime, wall clock) timeline exports too.
        let executed = tl.executed.as_ref().expect("mp timeline captured");
        let mp_slices = assert_valid_chrome(&executed.to_chrome_trace_scaled(1e6), &label);
        assert!(mp_slices >= num_units, "{label}: mp export lost slices");

        assert_units_covered(executed, num_units, &label);
        // Wall-clock attribution telescopes to the mp makespan as well.
        let cp = executed.critical_path(10);
        let makespan = executed.makespan();
        assert!(
            (cp.attributed() - makespan).abs() <= 1e-9 * (1.0 + makespan.abs()),
            "{label}: mp attributed {} vs makespan {makespan}",
            cp.attributed()
        );
    }
}

/// Random connected-ish symmetric pattern: a random geometric graph of
/// `n` points with mean degree `deg` (the repo's standard generator).
fn arb_pattern() -> impl Strategy<Value = spfactor::SymmetricPattern> {
    (5usize..100, 2.0f64..8.0, any::<u64>()).prop_map(|(n, deg, seed)| {
        let r = (deg / (std::f64::consts::PI * n as f64)).sqrt();
        spfactor::matrix::gen::random_geometric(n, r, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Virtual-clock capture reconciles on arbitrary SPD structures
    /// under both schemes and arbitrary grains/processor counts.
    #[test]
    fn prop_random_spd_timeline_reconciles(
        pattern in arb_pattern(),
        grain in 1usize..30,
        nprocs in 1usize..12,
        wrap in any::<bool>(),
    ) {
        let scheme = if wrap { Scheme::Wrap } else { Scheme::Block };
        let r = Pipeline::new(pattern)
            .scheme(scheme)
            .grain(grain)
            .processors(nprocs)
            .timeline(true)
            .run();
        let tl = r.timeline.as_ref().expect("timeline captured");
        prop_assert!(tl.executed.is_none(), "analytic backend has no mp timeline");
        tl.simulated
            .reconcile(&tl.timed.busy, tl.timed.makespan, 1e-9)
            .map_err(|e| TestCaseError(format!("{scheme:?}: {e}")))?;
        let makespan = tl.timed.makespan;
        let attributed = tl.critical_path.attributed();
        prop_assert!(
            (attributed - makespan).abs() <= 1e-9 * (1.0 + makespan.abs()),
            "{:?}: attributed {} vs makespan {}", scheme, attributed, makespan
        );
        let doc = json::parse(&tl.simulated.to_chrome_trace())
            .map_err(|e| TestCaseError(format!("bad JSON: {e}")))?;
        prop_assert!(validate_chrome_trace(&doc).is_ok());
    }

    /// The mp runtime's wall-clock capture holds its invariants on LAP
    /// grids: full unit coverage, overlap-free unit tracks, balanced
    /// transfer pairs, and makespan-telescoping attribution.
    #[test]
    fn prop_lap_grid_mp_timeline_invariants(
        rows in 2usize..9,
        cols in 2usize..9,
        grain in 1usize..6,
        nprocs in 1usize..6,
        wrap in any::<bool>(),
    ) {
        let scheme = if wrap { Scheme::Wrap } else { Scheme::Block };
        let r = Pipeline::new(spfactor::matrix::gen::lap9(rows, cols))
            .scheme(scheme)
            .grain(grain)
            .processors(nprocs)
            .backend(ExecutionBackend::MessagePassing(NetworkModel::default()))
            .timeline(true)
            .run();
        let tl = r.timeline.as_ref().expect("timeline captured");
        let executed = tl.executed.as_ref().expect("mp timeline captured");
        let label = format!("lap {rows}x{cols} {scheme:?} g{grain} p{nprocs}");
        assert_units_covered(executed, r.partition.num_units(), &label);
        assert_no_overlap(executed, &label);
        // Transfers open and close in matched pairs per (proc, peer).
        let mut open = std::collections::HashMap::new();
        for ev in &executed.events {
            match ev.kind {
                EventKind::TransferStart { peer, .. } => {
                    *open.entry((ev.proc, peer)).or_insert(0i64) += 1;
                }
                EventKind::TransferEnd { peer, .. } => {
                    *open.entry((ev.proc, peer)).or_insert(0i64) -= 1;
                }
                _ => {}
            }
        }
        for (pair, balance) in open {
            prop_assert_eq!(balance, 0, "{}: unbalanced transfers {:?}", label, pair);
        }
        let cp = executed.critical_path(5);
        let makespan = executed.makespan();
        prop_assert!(
            (cp.attributed() - makespan).abs() <= 1e-9 * (1.0 + makespan.abs()),
            "{}: attributed {} vs makespan {}", label, cp.attributed(), makespan
        );
    }
}
