//! Pinned equivalence: all three simulation engines must return
//! bit-identical traffic and work reports on every paper matrix.
//!
//! The element engine is the oracle — it walks each update operation and
//! deduplicates remote fetches one element at a time. The block engines
//! compute the same tallies in closed form from unit-block geometry, so
//! any divergence here means the interval algebra (or its parallel
//! merge) miscounts. This test is the repo-level witness behind the
//! `BENCH_pipeline.json` baseline, which only checks the matrices it
//! happens to time.

use spfactor::{Pipeline, Scheme, SimulateEngine};

fn assert_engines_agree(pattern: spfactor::SymmetricPattern, name: &str, scheme: Scheme) {
    for nprocs in [1usize, 4, 16] {
        let base = Pipeline::new(pattern.clone())
            .scheme(scheme)
            .processors(nprocs)
            .run();
        for engine in [SimulateEngine::Block, SimulateEngine::BlockParallel] {
            let r = Pipeline::new(pattern.clone())
                .scheme(scheme)
                .processors(nprocs)
                .engine(engine)
                .run();
            assert_eq!(
                r.traffic, base.traffic,
                "{name} P={nprocs} {scheme:?}: {engine:?} traffic diverges from element"
            );
            assert_eq!(
                r.work, base.work,
                "{name} P={nprocs} {scheme:?}: {engine:?} work diverges from element"
            );
        }
    }
}

#[test]
fn engines_identical_on_all_paper_matrices_block_scheme() {
    for m in spfactor::matrix::gen::paper::all() {
        assert_engines_agree(m.pattern, m.name, Scheme::Block);
    }
}

#[test]
fn engines_identical_on_all_paper_matrices_wrap_scheme() {
    for m in spfactor::matrix::gen::paper::all() {
        assert_engines_agree(m.pattern, m.name, Scheme::Wrap);
    }
}

#[test]
fn engines_identical_on_figure2_and_scaled_grid() {
    let fig2 = spfactor::matrix::gen::paper::fig2_grid();
    assert_engines_agree(fig2.pattern, fig2.name, Scheme::Block);
    let grid = spfactor::matrix::gen::paper::lap_grid(24);
    assert_engines_agree(grid.pattern, grid.name, Scheme::Block);
}
