//! Larger-scale stress tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`). These push the pipeline well
//! past the paper's problem sizes to catch scaling bugs (quadratic blow-
//! ups, stack overflows, allocation storms) that the small suites miss.

use spfactor::{Pipeline, Scheme};

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn pipeline_on_60x60_nine_point_grid() {
    // 3600 unknowns, ~4x the paper's largest problem.
    let p = spfactor::matrix::gen::lap9(60, 60);
    let r = Pipeline::new(p.clone()).grain(25).processors(32).run();
    assert_eq!(r.factor.n(), 3600);
    let w = Pipeline::new(p).scheme(Scheme::Wrap).processors(32).run();
    assert!(r.traffic.total < w.traffic.total);
    assert!(w.work.imbalance() <= r.work.imbalance() + 1e-9);
}

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn pipeline_on_3d_grid() {
    // 3-D problems produce much wider supernodes; 12^3 = 1728 unknowns.
    // The denser factor needs a correspondingly larger grain before
    // blocking pays off ("the cluster width has to go in step with the
    // grain size" generalizes to the grain itself).
    let p = spfactor::matrix::gen::grid7(12, 12, 12);
    let r = Pipeline::new(p.clone()).grain(100).processors(16).run();
    let w = Pipeline::new(p).scheme(Scheme::Wrap).processors(16).run();
    assert!(
        (r.traffic.total as f64) < 0.8 * w.traffic.total as f64,
        "block {} vs wrap {}",
        r.traffic.total,
        w.traffic.total
    );
}

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn numeric_solve_at_scale() {
    use spfactor::numeric::{solve, SpdSolver};
    let p = spfactor::matrix::gen::lap9(50, 50);
    let a = spfactor::matrix::gen::spd_from_pattern(&p, 1);
    let b: Vec<f64> = (0..a.n()).map(|i| ((i % 23) as f64) - 11.0).collect();
    let s = SpdSolver::new(&a, spfactor::Ordering::paper_default()).unwrap();
    let x = s.solve(&b);
    let bn = b.iter().map(|v| v.abs()).fold(1.0, f64::max);
    assert!(solve::residual_norm(&a, &x, &b) / bn < 1e-9);
}

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn block_schedule_executes_at_scale() {
    let p = spfactor::matrix::gen::lap9(40, 40);
    let r = Pipeline::new(p.clone()).grain(25).processors(16).run();
    let a = spfactor::matrix::gen::spd_from_pattern(&p.permute(&r.permutation), 2);
    let seq = spfactor::numeric::cholesky(&a, &r.factor).unwrap();
    let par = spfactor::numeric::cholesky_block_parallel(
        &a,
        &r.factor,
        &r.partition,
        &r.deps,
        &r.assignment,
    )
    .unwrap();
    assert_eq!(seq, par);
}
