//! Shape tests for the paper's experimental findings (Tables 2–5).
//!
//! Absolute values differ from the paper (different MMD tie-breaking,
//! structure-equivalent substitutes for four of the five matrices — see
//! `DESIGN.md`), but the qualitative results the paper draws its
//! conclusions from must hold. `EXPERIMENTS.md` records the quantitative
//! comparison.

use spfactor::{Pipeline, Scheme};

fn block(
    m: &spfactor::matrix::gen::paper::TestMatrix,
    g: usize,
    p: usize,
) -> spfactor::PipelineResult {
    Pipeline::new(m.pattern.clone())
        .grain(g)
        .processors(p)
        .run()
}

fn wrap(m: &spfactor::matrix::gen::paper::TestMatrix, p: usize) -> spfactor::PipelineResult {
    Pipeline::new(m.pattern.clone())
        .scheme(Scheme::Wrap)
        .processors(p)
        .run()
}

/// Table 1: dimensions and nonzero counts of the test set.
#[test]
fn table1_matrix_set_matches() {
    let ms = spfactor::matrix::gen::paper::all();
    let names: Vec<&str> = ms.iter().map(|m| m.name).collect();
    assert_eq!(
        names,
        ["BUS1138", "CANN1072", "DWT512", "LAP30", "LSHP1009"]
    );
    // LAP30 is exact.
    let lap = &ms[3];
    assert_eq!(lap.pattern.n(), 900);
    assert_eq!(lap.pattern.nnz_lower(), 4322);
}

/// Table 2: block-mapping communication increases with P and decreases
/// substantially when the grain grows from 4 to 25.
#[test]
fn table2_block_traffic_shape() {
    let m = spfactor::matrix::gen::paper::lap30();
    let t = |g: usize, p: usize| block(&m, g, p).traffic.total;
    // Communication increases with the number of processors.
    assert!(t(4, 4) < t(4, 16));
    assert!(t(25, 4) < t(25, 16));
    // Larger grain reduces communication; the paper reports > 50%
    // reduction for LAP30 at P = 16 and 32 — require at least 30% here.
    for p in [16, 32] {
        let (g4, g25) = (t(4, p), t(25, p));
        assert!(
            (g25 as f64) < 0.7 * g4 as f64,
            "P = {p}: g=25 traffic {g25} not well below g=4 traffic {g4}"
        );
    }
}

/// Table 3: block-mapping load imbalance grows with the grain size and
/// (broadly) with the processor count.
#[test]
fn table3_block_imbalance_shape() {
    let m = spfactor::matrix::gen::paper::lap30();
    let d = |g: usize, p: usize| block(&m, g, p).work.imbalance();
    // Larger grain worsens balance at scale.
    assert!(
        d(25, 32) > d(4, 32),
        "Δ(g=25) {} !> Δ(g=4) {} at P=32",
        d(25, 32),
        d(4, 32)
    );
    // More processors worsen balance for fixed grain.
    assert!(d(25, 32) > d(25, 4));
}

/// Table 4: the minimum cluster width trades communication against load
/// balance on LAP30 (complementary movement).
#[test]
fn table4_width_sweep_moves_both_metrics() {
    let m = spfactor::matrix::gen::paper::lap30();
    let run = |w: usize| {
        Pipeline::new(m.pattern.clone())
            .grain(4)
            .min_cluster_width(w)
            .processors(16)
            .run()
    };
    // The paper's dip appears at width 8 with GENMMD; our MMD tie-breaks
    // differently, shifting the crossover to a larger width. Sweep a wider
    // range and check the *complementary movement* the table demonstrates:
    // some width cuts communication below the narrow settings at the cost
    // of clearly worse balance.
    let widths = [2usize, 4, 8, 12, 16];
    let results: Vec<_> = widths.iter().map(|&w| run(w)).collect();
    let traffic: Vec<usize> = results.iter().map(|r| r.traffic.total).collect();
    let imb: Vec<f64> = results.iter().map(|r| r.work.imbalance()).collect();
    let last = widths.len() - 1;
    assert!(
        traffic[last] < traffic[0],
        "traffic at width {} ({}) not below width 2 ({})",
        widths[last],
        traffic[last],
        traffic[0]
    );
    assert!(
        imb[last] > imb[1],
        "Δ at width {} ({}) not above width 4 ({})",
        widths[last],
        imb[last],
        imb[1]
    );
    // And the balance-optimal width is an interior point (widths both
    // above and below it do worse or equal) — the "has to go in step with
    // the grain size" tuning story.
    let best = imb
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert!(best < last, "imbalance should worsen at the widest setting");
}

/// Table 5 vs Table 2: wrap mapping communicates more than the block
/// scheme on every matrix; Table 5 vs Table 3: wrap balances better.
#[test]
fn table5_wrap_vs_block_tradeoff_all_matrices() {
    for m in spfactor::matrix::gen::paper::all() {
        let b = block(&m, 25, 16);
        let w = wrap(&m, 16);
        assert!(
            b.traffic.total < w.traffic.total,
            "{}: block traffic {} !< wrap {}",
            m.name,
            b.traffic.total,
            w.traffic.total
        );
        assert!(
            w.work.imbalance() <= b.work.imbalance() + 1e-9,
            "{}: wrap Δ {} !<= block Δ {}",
            m.name,
            w.work.imbalance(),
            b.work.imbalance()
        );
    }
}

/// Table 5: wrap mapping's Δ stays small (uniform distribution) and its
/// traffic grows with P; P = 1 communicates nothing.
#[test]
fn table5_wrap_shape() {
    let m = spfactor::matrix::gen::paper::lap30();
    let w1 = wrap(&m, 1);
    assert_eq!(w1.traffic.total, 0);
    assert_eq!(w1.work.imbalance(), 0.0);
    let w4 = wrap(&m, 4);
    let w16 = wrap(&m, 16);
    let w32 = wrap(&m, 32);
    assert!(w4.traffic.total < w16.traffic.total);
    assert!(w16.traffic.total < w32.traffic.total);
    // The paper's Δ for wrap never exceeds 0.35 on any matrix/P; ours
    // stays in the same small regime on LAP30 (paper: <= 0.11).
    for (r, p) in [(&w4, 4), (&w16, 16), (&w32, 32)] {
        assert!(
            r.work.imbalance() < 0.35,
            "wrap Δ {} at P={p} out of regime",
            r.work.imbalance()
        );
    }
}

/// §4: "a smaller grain size in the block scheme gives ... decrease in
/// communication without too much load imbalance as compared to
/// wrap-mapping" — block at g=4 must beat wrap's traffic while keeping Δ
/// within a modest factor.
#[test]
fn small_grain_block_dominates_wrap_on_communication() {
    let m = spfactor::matrix::gen::paper::lap30();
    let b = block(&m, 4, 32);
    let w = wrap(&m, 32);
    assert!(b.traffic.total < w.traffic.total);
    assert!(
        b.work.imbalance() < 1.0,
        "Δ {} too large",
        b.work.imbalance()
    );
}
