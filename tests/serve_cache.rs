//! Integration suite for the `spfactor-serve` layer: the schedule
//! cache's concurrency contract (hit/miss accounting, single-flight
//! build deduplication, LRU eviction order), the service's admission
//! control, and — the load-bearing guarantee — that everything served
//! out of the cache is **bit-identical** to a fresh, from-scratch
//! `Pipeline` run on the same inputs. The cache is an amortization, not
//! an approximation.

use spfactor::matrix::gen;
use spfactor::matrix::Permutation;
use spfactor::numeric::solve::SpdSolver;
use spfactor::{ExecutionBackend, NetworkModel, Ordering, Pipeline, Scheme, SymbolicFactor};
use spfactor_serve::{
    ExecutionKernel, ScheduleCache, ServeConfig, ServeError, SolveRequest, SolverService,
    ValueBatch,
};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Barrier, Mutex};

/// Seed the core pipeline synthesizes execution values from; mirrored
/// here to cross-validate the serve path against `Pipeline::run()`'s
/// executed factor.
const EXECUTION_VALUES_SEED: u64 = 42;

fn grid_request(cols: usize, rows: usize, seed: u64) -> SolveRequest {
    let pattern = gen::lap9(cols, rows);
    let n = pattern.n();
    let values = gen::spd_from_pattern(&pattern, seed);
    let rhs: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.61).cos()).collect();
    SolveRequest::new(pattern)
        .processors(4)
        .batch(ValueBatch::new(values).with_rhs(rhs))
}

#[test]
fn hits_and_misses_are_counted_per_key() {
    let service = SolverService::start(ServeConfig::default());
    // Two distinct patterns and a parameter variant of the first: three
    // keys, three misses, then a hit on each.
    let a = grid_request(6, 6, 1);
    let b = grid_request(7, 5, 2);
    let c = a.clone().scheme(Scheme::Wrap);
    for req in [&a, &b, &c] {
        let resp = service.solve(req.clone()).unwrap();
        assert!(!resp.cache_hit, "first request per key must miss");
    }
    for req in [&a, &b, &c] {
        let resp = service.solve(req.clone()).unwrap();
        assert!(resp.cache_hit, "second request per key must hit");
    }
    let stats = service.cache_stats();
    assert_eq!((stats.misses, stats.hits, stats.waits), (3, 3, 0));
    assert_eq!(stats.hit_rate(), 0.5);
    assert_eq!(service.cache().len(), 3);
}

#[test]
fn ordering_engine_is_pinned_in_the_cache_key() {
    // A schedule planned under one ordering engine must never be served
    // to a request for another: the engine is part of the ScheduleKey,
    // so an engine variant of an otherwise identical request is a new
    // key (miss), while re-asking with the same engine hits.
    let service = SolverService::start(ServeConfig::default());
    let direct = grid_request(6, 6, 1);
    let compressed = direct
        .clone()
        .order_engine(spfactor::OrderEngine::Compressed);
    assert_ne!(direct.key(), compressed.key());

    let first = service.solve(direct.clone()).unwrap();
    assert!(!first.cache_hit);
    let cross = service.solve(compressed.clone()).unwrap();
    assert!(
        !cross.cache_hit,
        "engine variant must not reuse the artifact"
    );
    let again = service.solve(compressed).unwrap();
    assert!(again.cache_hit);
    assert_eq!(service.cache().len(), 2);
    // Each artifact carries the key it was planned under.
    assert_eq!(first.artifact.key(), &direct.key());
    // lap9 grids do not compress, so the engines plan the identical
    // schedule even though they cache under different keys.
    assert_eq!(
        first.artifact.permutation().as_slice(),
        again.artifact.permutation().as_slice()
    );
    assert_eq!(
        service.cache_stats().misses,
        2,
        "one build per engine variant"
    );
}

#[test]
fn concurrent_misses_on_one_pattern_build_exactly_once() {
    const THREADS: usize = 8;
    let cache = Arc::new(ScheduleCache::new(4));
    let pipeline = Arc::new(Pipeline::new(gen::lap9(10, 10)).processors(4));
    let builds = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let fingerprints: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = cache.clone();
                let pipeline = pipeline.clone();
                let builds = builds.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    // Line every thread up on the same instant so the
                    // misses genuinely race.
                    barrier.wait();
                    cache
                        .get_or_build(pipeline.key(), || {
                            builds.fetch_add(1, AtomicOrdering::SeqCst);
                            pipeline
                                .try_plan()
                                .map_err(|e| ServeError::Build(Arc::new(e)))
                        })
                        .unwrap()
                        .fingerprint()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        builds.load(AtomicOrdering::SeqCst),
        1,
        "single-flight: racing misses must coalesce onto one build"
    );
    assert!(
        fingerprints.iter().all(|&f| f == fingerprints[0]),
        "every thread must observe the same artifact"
    );
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(
        stats.hits + stats.waits,
        (THREADS - 1) as u64,
        "the other lookups were hits or coalesced waits"
    );
}

#[test]
fn lru_evicts_least_recently_used_first() {
    let cache = ScheduleCache::new(2);
    let a = Pipeline::new(gen::lap9(5, 4)).processors(2);
    let b = Pipeline::new(gen::lap9(6, 4)).processors(2);
    let c = Pipeline::new(gen::lap9(7, 4)).processors(2);
    let build = |p: &Pipeline| {
        let artifact = p.try_plan().map_err(|e| ServeError::Build(Arc::new(e)));
        move || artifact
    };
    cache.get_or_build(a.key(), build(&a)).unwrap();
    cache.get_or_build(b.key(), build(&b)).unwrap();
    // Touch `a`: recency order is now [a, b] with `b` coldest.
    cache.get_or_build(a.key(), || unreachable!("hit")).unwrap();
    cache.get_or_build(c.key(), build(&c)).unwrap();
    assert!(cache.contains(&a.key()), "recently-touched entry survives");
    assert!(!cache.contains(&b.key()), "coldest entry is evicted");
    assert!(cache.contains(&c.key()), "new entry is resident");
    // Overflow again: now `a` (older than `c`) goes.
    let d = Pipeline::new(gen::lap9(8, 4)).processors(2);
    cache.get_or_build(d.key(), build(&d)).unwrap();
    assert!(!cache.contains(&a.key()));
    assert_eq!(cache.stats().evictions, 2);
    assert_eq!(cache.snapshot().keys, vec![d.key(), c.key()]);
}

#[test]
fn cached_artifact_factors_are_bit_identical_to_fresh_runs() {
    // The acceptance pin: a factor served through the cache equals a
    // from-scratch front end + factorization on the same inputs, bit
    // for bit — and repeated served solves keep returning those bits.
    let pattern = gen::lap9(9, 9);
    let a = gen::spd_from_pattern(&pattern, 17);
    let rhs: Vec<f64> = (0..pattern.n()).map(|i| (i as f64).sin()).collect();

    // Fresh path, no serve involvement: order, symbolic, factor.
    let perm = spfactor::order::order(&pattern, Ordering::paper_default());
    let permuted_a = a.permute(&perm);
    let symbolic = SymbolicFactor::from_pattern(&permuted_a.pattern());
    let fresh_factor = spfactor::numeric::cholesky(&permuted_a, &symbolic).unwrap();
    let fresh_solver = SpdSolver::new(&a, Ordering::paper_default()).unwrap();
    let fresh_x = fresh_solver.solve(&rhs);

    let service = SolverService::start(ServeConfig::default());
    let request = SolveRequest::new(pattern)
        .processors(4)
        .batch(ValueBatch::new(a).with_rhs(rhs));
    for round in 0..3 {
        let resp = service.solve(request.clone()).unwrap();
        assert_eq!(resp.cache_hit, round > 0);
        assert_eq!(
            resp.batches[0].factor, fresh_factor,
            "served factor diverged from the fresh factorization"
        );
        assert_eq!(
            resp.batches[0].solutions[0], fresh_x,
            "served solution diverged from the fresh solver"
        );
    }
    // All three kernels serve the same bits from the same artifact.
    for kernel in [
        ExecutionKernel::BlockParallel,
        ExecutionKernel::MessagePassing(NetworkModel::default()),
    ] {
        let resp = service.solve(request.clone().kernel(kernel)).unwrap();
        assert!(resp.cache_hit, "kernel choice must not change the key");
        assert_eq!(resp.batches[0].factor, fresh_factor);
        assert_eq!(resp.batches[0].solutions[0], fresh_x);
    }
}

#[test]
fn served_factor_matches_pipeline_run_executed_factor() {
    // Sharper still: `Pipeline::run()` under the message-passing
    // backend factors values synthesized (seed 42) from the *permuted*
    // pattern. Feeding the serve layer those same values, expressed in
    // original coordinates via the inverse permutation, must reproduce
    // the executed factor bit for bit.
    let pattern = gen::lap9(8, 8);
    let pipeline = Pipeline::new(pattern.clone())
        .processors(4)
        .backend(ExecutionBackend::MessagePassing(NetworkModel::default()));
    let fresh = pipeline.clone().run();
    let executed = fresh.execution.as_ref().expect("mp backend ran");

    let perm = spfactor::order::order(&pattern, Ordering::paper_default());
    let synthesized = gen::spd_from_pattern(&pattern.permute(&perm), EXECUTION_VALUES_SEED);
    let inverse = Permutation::from_vec(perm.inverse_slice().to_vec()).unwrap();
    let values = synthesized.permute(&inverse);

    let service = SolverService::start(ServeConfig::default());
    let resp = service
        .solve(
            SolveRequest::new(pattern)
                .processors(4)
                .kernel(ExecutionKernel::MessagePassing(NetworkModel::default()))
                .batch(ValueBatch::new(values)),
        )
        .unwrap();
    assert_eq!(
        resp.batches[0].factor, executed.factor,
        "served mp factor diverged from Pipeline::run()'s executed factor"
    );
}

#[test]
fn queue_overflow_is_rejected_as_overloaded() {
    // One worker wedged on a slow request, a queue of depth 2: the
    // third submit beyond the in-flight one must be refused with the
    // typed overload error, not blocked or dropped.
    let service = SolverService::start(ServeConfig {
        cache_capacity: 8,
        queue_depth: 2,
        workers: 1,
        ..ServeConfig::default()
    });
    // Big enough that the worker is still busy while we flood.
    let slow = grid_request(40, 40, 1);
    let mut tickets = vec![service.submit(slow).unwrap()];
    let mut overloaded = 0;
    // Fill the queue and then some; admission control must kick in.
    for _ in 0..8 {
        match service.submit(grid_request(5, 4, 2)) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                overloaded += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(overloaded > 0, "flooding a depth-2 queue must overload");
    assert_eq!(service.rejected(), overloaded);
    // Everything that was admitted completes once the worker drains.
    for t in tickets {
        t.wait().unwrap();
    }
    assert_eq!(service.queue_depth(), 0);
}

#[test]
fn coalesced_concurrent_requests_serve_identical_bits() {
    // End-to-end single-flight: many clients race the same cold
    // pattern through the queue; the artifact is built once and every
    // response carries the same factor bits.
    const CLIENTS: usize = 6;
    let service = Arc::new(SolverService::start(ServeConfig {
        cache_capacity: 4,
        queue_depth: 64,
        workers: 4,
        ..ServeConfig::default()
    }));
    let request = grid_request(12, 12, 3);
    let factors = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let service = service.clone();
            let request = request.clone();
            let factors = &factors;
            s.spawn(move || {
                let resp = service.submit(request).unwrap().wait().unwrap();
                factors.lock().unwrap().push(resp.batches[0].factor.clone());
            });
        }
    });
    let factors = factors.into_inner().unwrap();
    assert_eq!(factors.len(), CLIENTS);
    assert!(
        factors.iter().all(|f| f == &factors[0]),
        "racing clients observed different factors"
    );
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "the cold pattern must build exactly once");
    assert_eq!(stats.hits + stats.waits, (CLIENTS - 1) as u64);
}

#[test]
fn build_failures_surface_typed_and_do_not_poison_the_key() {
    let service = SolverService::start(ServeConfig::default());
    // Zero processors is rejected by pipeline validation inside the
    // cached build; the error must come back as ServeError::Build.
    let bad = grid_request(5, 5, 1).processors(0);
    match service.solve(bad).unwrap_err() {
        ServeError::Build(e) => {
            assert!(matches!(
                *e,
                spfactor::SpfactorError::InvalidParameter {
                    param: "processors",
                    ..
                }
            ));
        }
        other => panic!("expected Build error, got {other}"),
    }
    // The healthy variant of the same pattern still builds fine.
    service.solve(grid_request(5, 5, 1)).unwrap();
}
