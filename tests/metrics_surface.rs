//! Integration test for the documented metrics surface (docs/METRICS.md):
//! a pipeline run with a recorder attached must emit the advertised
//! spans, counters and gauges, and the gauge values must agree with the
//! artifacts the pipeline returns.
//!
//! With `--no-default-features` the instrumentation compiles to no-ops;
//! the shape-only assertions below still hold (same JSON skeleton, no
//! entries).

use spfactor::{Pipeline, Recorder};
use std::sync::Arc;

// Installed so the pipeline's `phase.*.peak_bytes` gauges are live in
// this binary: they are recorded only when a tracking allocator is
// routing this process's allocations (docs/METRICS.md).
#[global_allocator]
static ALLOC: spfactor::trace::alloc::TrackingAllocator =
    spfactor::trace::alloc::TrackingAllocator::new();

/// The paper's primary configuration: LAP30, grain 4, 16 processors.
fn run_lap30_block() -> (spfactor::PipelineResult, Arc<Recorder>) {
    let rec = Arc::new(Recorder::new());
    let m = spfactor::matrix::gen::paper::lap30();
    let result = Pipeline::new(m.pattern)
        .grain(4)
        .processors(16)
        .with_recorder(rec.clone())
        .run();
    (result, rec)
}

#[test]
fn json_document_is_always_shaped() {
    let (_result, rec) = run_lap30_block();
    let json = rec.to_json();
    for key in ["\"counters\"", "\"gauges\"", "\"spans\""] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}

#[test]
fn result_carries_the_recorder() {
    let (result, rec) = run_lap30_block();
    let metrics = result.metrics().expect("recorder was attached");
    assert_eq!(metrics.to_json(), rec.to_json());
    // Without a recorder there are no metrics.
    let bare = Pipeline::new(spfactor::matrix::gen::lap9(4, 4)).run();
    assert!(bare.metrics().is_none());
}

#[cfg(feature = "trace")]
mod enabled {
    use super::*;
    use spfactor::Scheme;

    #[test]
    fn gauges_agree_with_pipeline_artifacts() {
        let (result, rec) = run_lap30_block();
        assert_eq!(
            rec.gauge_value("symbolic.fill_in"),
            Some(result.factor.fill_in() as f64)
        );
        assert_eq!(
            rec.gauge_value("simulate.traffic.total"),
            Some(result.traffic.total as f64)
        );
        assert_eq!(
            rec.gauge_value("simulate.work.total"),
            Some(result.work.total as f64)
        );
        assert_eq!(
            rec.gauge_value("partition.units"),
            Some(result.partition.num_units() as f64)
        );
        assert_eq!(
            rec.gauge_value("partition.deps.edges"),
            Some(result.deps.num_edges() as f64)
        );
    }

    #[test]
    fn every_block_phase_emits_its_span() {
        let (_result, rec) = run_lap30_block();
        for span in [
            "phase.order",
            "phase.symbolic",
            "phase.partition",
            "phase.sched",
            "phase.simulate",
            "order.compute",
            "symbolic.from_pattern",
            "partition.identify_clusters",
            "partition.split_units",
            "partition.deps",
            "sched.block_allocation",
            "simulate.data_traffic",
            "simulate.work_distribution",
        ] {
            let stats = rec
                .span_stats(span)
                .unwrap_or_else(|| panic!("span {span} missing; recorded: {:?}", rec.span_names()));
            assert_eq!(stats.count, 1, "span {span} should fire exactly once");
        }
    }

    #[test]
    fn documented_counters_are_present() {
        let (result, rec) = run_lap30_block();
        for counter in [
            "order.mmd.passes",
            "order.mmd.eliminations",
            "order.mmd.degree_updates",
            "simulate.traffic.remote_fetches",
            "simulate.traffic.cache_hits",
            "simulate.traffic.local_accesses",
        ] {
            assert!(
                rec.counter(counter) > 0,
                "counter {counter} missing or zero; recorded: {:?}",
                rec.counter_names()
            );
        }
        // MMD eliminates every supervariable exactly once; there are at
        // most n of them.
        assert!(rec.counter("order.mmd.eliminations") <= result.factor.n() as u64);
        // The ten dependency categories partition the update operations.
        let per_category: u64 = (1..=10)
            .map(|c| rec.counter(&format!("partition.deps.category.{c}")))
            .sum();
        assert!(per_category > 0, "no categorized dependencies recorded");
        // The remote-fetch counter is the traffic total by definition.
        assert_eq!(
            rec.counter("simulate.traffic.remote_fetches"),
            result.traffic.total as u64
        );
    }

    #[test]
    fn allocation_branch_counters_cover_every_unit() {
        let (result, rec) = run_lap30_block();
        let branches: u64 = [
            "sched.alloc.independent_wrap",
            "sched.alloc.dependent_pred",
            "sched.alloc.dependent_pool",
            "sched.alloc.triangle_pred",
            "sched.alloc.triangle_pool",
            "sched.alloc.rect_rr",
        ]
        .iter()
        .map(|c| rec.counter(c))
        .sum();
        assert_eq!(branches, result.partition.num_units() as u64);
    }

    #[test]
    fn message_passing_backend_emits_its_surface() {
        let rec = Arc::new(Recorder::new());
        let result = Pipeline::new(spfactor::matrix::gen::lap9(8, 8))
            .grain(4)
            .processors(4)
            .backend(spfactor::ExecutionBackend::MessagePassing(
                spfactor::NetworkModel::default(),
            ))
            .with_recorder(rec.clone())
            .run();
        let exec = result.execution.as_ref().expect("backend ran");
        for span in ["phase.execute", "mp.execute"] {
            let stats = rec
                .span_stats(span)
                .unwrap_or_else(|| panic!("span {span} missing"));
            assert_eq!(stats.count, 1, "span {span} should fire exactly once");
        }
        // The executed runtime reproduces the analytic model exactly, and
        // the counters/gauges mirror the report it returns.
        assert_eq!(
            rec.counter("mp.remote_fetches"),
            result.traffic.total as u64
        );
        assert_eq!(rec.counter("mp.msgs_sent"), exec.msgs_total() as u64);
        assert_eq!(rec.counter("mp.bytes"), exec.bytes_total() as u64);
        assert_eq!(rec.counter("mp.cache_hits"), exec.cache_hits_total() as u64);
        assert_eq!(
            rec.counter("mp.units_run"),
            result.partition.num_units() as u64
        );
        assert_eq!(
            rec.gauge_value("mp.traffic.total"),
            Some(result.traffic.total as f64)
        );
        assert_eq!(
            rec.gauge_value("mp.work.max"),
            Some(result.work.max() as f64)
        );
        assert_eq!(
            rec.gauge_value("mp.estimated_time"),
            Some(exec.estimated_time)
        );
        for p in 0..4 {
            assert_eq!(
                rec.gauge_value(&format!("mp.proc.{p}.traffic")),
                Some(exec.per_proc[p].traffic as f64)
            );
        }
        // The fault/retry surface exists on every traced mp run — and on
        // a reliable network every one of the counters is zero.
        let names = rec.counter_names();
        for counter in [
            "mp.fault.dropped",
            "mp.fault.duplicated",
            "mp.fault.delayed",
            "mp.fault.reordered",
            "mp.fault.stalls",
            "mp.retry.requests",
            "mp.retry.queries",
            "mp.retry.stale",
        ] {
            assert!(
                names.iter().any(|n| n == counter),
                "counter {counter} missing; recorded: {names:?}"
            );
            assert_eq!(
                rec.counter(counter),
                0,
                "counter {counter} must be zero on a reliable network"
            );
        }
        assert!(exec.faults.is_quiet());
    }

    #[test]
    fn fault_injection_shows_up_in_the_metrics() {
        let rec = Arc::new(Recorder::new());
        let result = Pipeline::new(spfactor::matrix::gen::lap9(8, 8))
            .grain(4)
            .processors(4)
            .backend(spfactor::ExecutionBackend::MessagePassing(
                spfactor::NetworkModel::default(),
            ))
            .fault_plan(spfactor::FaultPlan::chaos(21))
            .with_recorder(rec.clone())
            .run();
        let exec = result.execution.as_ref().expect("backend ran");
        // The counters mirror the fault trace the report carries.
        assert_eq!(rec.counter("mp.fault.dropped"), exec.faults.dropped as u64);
        assert_eq!(
            rec.counter("mp.fault.duplicated"),
            exec.faults.duplicated as u64
        );
        assert_eq!(rec.counter("mp.fault.delayed"), exec.faults.delayed as u64);
        assert_eq!(
            rec.counter("mp.fault.reordered"),
            exec.faults.reordered as u64
        );
        assert_eq!(rec.counter("mp.retry.requests"), exec.faults.retries as u64);
        assert_eq!(rec.counter("mp.retry.queries"), exec.faults.queries as u64);
        assert_eq!(rec.counter("mp.retry.stale"), exec.faults.stale as u64);
        // Chaos at these rates always injects something.
        let injected: u64 = [
            "mp.fault.dropped",
            "mp.fault.duplicated",
            "mp.fault.delayed",
            "mp.fault.reordered",
        ]
        .iter()
        .map(|c| rec.counter(c))
        .sum();
        assert!(injected > 0, "chaos plan injected nothing");
        // Faults never change what was computed or moved: the observed
        // traffic still equals the analytic prediction exactly.
        assert_eq!(
            rec.counter("mp.remote_fetches"),
            result.traffic.total as u64
        );
    }

    #[test]
    fn block_engine_emits_its_surface() {
        // Selecting a closed-form engine swaps the simulate spans: the
        // element-model spans disappear and the engine span plus the
        // simulate.engine.* counters appear, while the shared traffic /
        // work gauges keep their values (docs/METRICS.md).
        let rec = Arc::new(Recorder::new());
        let m = spfactor::matrix::gen::paper::lap30();
        let result = Pipeline::new(m.pattern)
            .grain(4)
            .processors(16)
            .engine(spfactor::SimulateEngine::Block)
            .with_recorder(rec.clone())
            .run();
        let stats = rec
            .span_stats("simulate.engine.block")
            .expect("block engine span");
        assert_eq!(stats.count, 1);
        assert!(rec.span_stats("simulate.data_traffic").is_none());
        assert!(rec.span_stats("simulate.work_distribution").is_none());
        assert_eq!(
            rec.counter("simulate.engine.columns"),
            result.factor.n() as u64
        );
        for counter in [
            "simulate.engine.unit_visits",
            "simulate.engine.interval_pieces",
        ] {
            assert!(
                rec.counter(counter) > 0,
                "counter {counter} missing or zero"
            );
        }
        assert_eq!(rec.gauge_value("simulate.engine.threads"), Some(1.0));
        // Shared gauges agree with the returned reports (and therefore
        // with what the element engine would have recorded).
        assert_eq!(
            rec.gauge_value("simulate.traffic.total"),
            Some(result.traffic.total as f64)
        );
        assert_eq!(
            rec.gauge_value("simulate.traffic.mean"),
            Some(result.traffic.mean_f64())
        );
        assert_eq!(
            rec.gauge_value("simulate.work.imbalance"),
            Some(result.work.imbalance())
        );
    }

    #[test]
    fn sweep_deps_engine_emits_its_surface() {
        // Selecting a sweep engine swaps the deps span: the element span
        // `partition.deps` disappears and the engine span plus the
        // deps.engine.* counters appear, while the shared graph gauges
        // and category counters keep their values (docs/METRICS.md).
        let rec = Arc::new(Recorder::new());
        let m = spfactor::matrix::gen::paper::lap30();
        let result = Pipeline::new(m.pattern)
            .grain(4)
            .processors(16)
            .deps_engine(spfactor::DepsEngine::Sweep)
            .with_recorder(rec.clone())
            .run();
        let stats = rec
            .span_stats("deps.engine.sweep")
            .expect("sweep engine span");
        assert_eq!(stats.count, 1);
        assert!(rec.span_stats("partition.deps").is_none());
        assert_eq!(rec.counter("deps.engine.columns"), result.factor.n() as u64);
        let nnz: u64 = (0..result.factor.n())
            .map(|j| result.factor.col_count(j) as u64)
            .sum();
        assert_eq!(rec.counter("deps.engine.pairs"), nnz);
        assert!(rec.counter("deps.engine.segments") >= nnz);
        assert_eq!(rec.gauge_value("deps.engine.threads"), Some(1.0));
        // Shared gauges and category counters agree with the returned
        // graph (and therefore with what the element engine records).
        assert_eq!(
            rec.gauge_value("partition.deps.edges"),
            Some(result.deps.num_edges() as f64)
        );
        assert_eq!(
            rec.gauge_value("partition.deps.independent_units"),
            Some(result.deps.independent_units().len() as f64)
        );
        for c in spfactor::partition::DepCategory::all() {
            assert_eq!(
                rec.counter(&format!("partition.deps.category.{}", c.number())),
                result.deps.ops_in_category(c) as u64,
                "category {c:?}"
            );
        }
    }

    #[test]
    fn timeline_gauges_match_the_capture() {
        // The documented timeline.* surface (docs/METRICS.md): gauges
        // mirror the TimelineCapture the pipeline returns, and the
        // capture phase emits its span.
        let rec = Arc::new(Recorder::new());
        let m = spfactor::matrix::gen::paper::lap30();
        let result = Pipeline::new(m.pattern)
            .grain(4)
            .processors(16)
            .timeline(true)
            .with_recorder(rec.clone())
            .run();
        let tl = result.timeline.as_ref().expect("timeline captured");
        assert_eq!(
            rec.gauge_value("timeline.events"),
            Some(tl.simulated.events.len() as f64)
        );
        assert_eq!(
            rec.gauge_value("timeline.makespan"),
            Some(tl.timed.makespan)
        );
        assert_eq!(
            rec.gauge_value("timeline.critical.hops"),
            Some(tl.critical_path.hops.len() as f64)
        );
        assert_eq!(
            rec.gauge_value("timeline.critical.compute"),
            Some(tl.critical_path.compute)
        );
        assert_eq!(
            rec.gauge_value("timeline.critical.transfer"),
            Some(tl.critical_path.transfer)
        );
        assert_eq!(
            rec.gauge_value("timeline.critical.wait"),
            Some(tl.critical_path.wait)
        );
        let stats = rec.span_stats("phase.timeline").expect("timeline span");
        assert_eq!(stats.count, 1);
        // Analytic backend: no executed timeline, no mp gauges.
        assert!(tl.executed.is_none());
        assert_eq!(rec.gauge_value("timeline.mp.events"), None);
    }

    #[test]
    fn mp_timeline_gauges_follow_the_executed_capture() {
        let rec = Arc::new(Recorder::new());
        let result = Pipeline::new(spfactor::matrix::gen::lap9(8, 8))
            .grain(4)
            .processors(4)
            .backend(spfactor::ExecutionBackend::MessagePassing(
                spfactor::NetworkModel::default(),
            ))
            .timeline(true)
            .with_recorder(rec.clone())
            .run();
        let tl = result.timeline.as_ref().expect("timeline captured");
        let executed = tl.executed.as_ref().expect("mp timeline captured");
        assert_eq!(
            rec.gauge_value("timeline.mp.events"),
            Some(executed.events.len() as f64)
        );
        assert_eq!(
            rec.gauge_value("timeline.mp.makespan"),
            Some(executed.makespan())
        );
    }

    #[test]
    fn bench_regression_gauges_are_recorded() {
        // The documented bench.regression.* surface (docs/METRICS.md):
        // RegressionReport::record mirrors the comparison outcome.
        use spfactor::trace::{json, regress};
        let base = json::parse(r#"{"phases_ms": {"order": 10.0, "deps": 100.0}}"#).unwrap();
        let cand = json::parse(r#"{"phases_ms": {"order": 10.0, "deps": 130.0}}"#).unwrap();
        let report = regress::compare(&base, &cand, &regress::RegressOptions::default());
        let rec = Recorder::new();
        report.record(&rec);
        assert_eq!(rec.gauge_value("bench.regression.checked"), Some(2.0));
        assert_eq!(rec.gauge_value("bench.regression.missing"), Some(0.0));
        assert_eq!(rec.gauge_value("bench.regression.count"), Some(1.0));
        assert_eq!(rec.gauge_value("bench.regression.max_ratio"), Some(1.3));
        assert!(!report.passed());
    }

    #[test]
    fn phase_peak_gauges_are_populated() {
        // Every phase publishes its heap high-water mark when the
        // running binary (this one) installs the tracking allocator.
        let (_result, rec) = run_lap30_block();
        for phase in ["order", "symbolic", "partition", "sched", "simulate"] {
            let gauge = format!("phase.{phase}.peak_bytes");
            let peak = rec.gauge_value(&gauge).unwrap_or_else(|| {
                panic!("gauge {gauge} missing; recorded: {:?}", rec.gauge_names())
            });
            assert!(peak > 0.0, "gauge {gauge} not populated");
        }
    }

    #[test]
    fn compressed_order_engine_emits_its_surface() {
        // Selecting the compressed engine records the engine counter,
        // the compression-ratio gauges and the weighted-MD work
        // counters (docs/METRICS.md); the direct engine records only
        // its own engine counter.
        let rec = Arc::new(Recorder::new());
        let p = spfactor::matrix::gen::grid5_fe(8, 8);
        let n = p.n() as f64;
        Pipeline::new(p.clone())
            .processors(4)
            .order_engine(spfactor::OrderEngine::Compressed)
            .with_recorder(rec.clone())
            .run();
        assert_eq!(rec.counter("order.engine.compressed"), 1);
        assert_eq!(rec.counter("order.engine.direct"), 0);
        assert_eq!(rec.gauge_value("order.compress.original"), Some(n));
        let nodes = rec
            .gauge_value("order.compress.nodes")
            .expect("nodes gauge");
        assert!(nodes >= 1.0 && nodes <= n);
        // A finite-element grid has indistinguishable columns.
        assert!(nodes < n, "grid5_fe should compress below {n} nodes");
        let ratio = rec
            .gauge_value("order.compress.ratio")
            .expect("ratio gauge");
        assert!((ratio - n / nodes).abs() < 1e-9);
        for counter in [
            "order.mmd.passes",
            "order.mmd.eliminations",
            "order.mmd.degree_updates",
        ] {
            assert!(
                rec.counter(counter) > 0,
                "counter {counter} missing or zero"
            );
        }

        let rec2 = Arc::new(Recorder::new());
        Pipeline::new(p)
            .processors(4)
            .with_recorder(rec2.clone())
            .run();
        assert_eq!(rec2.counter("order.engine.direct"), 1);
        assert_eq!(rec2.counter("order.engine.compressed"), 0);
        assert_eq!(rec2.gauge_value("order.compress.ratio"), None);
    }

    #[test]
    fn order_alg_counter_names_the_method() {
        let (_result, rec) = run_lap30_block();
        assert_eq!(rec.counter("order.alg.mmd"), 1);
        let rec2 = Arc::new(Recorder::new());
        Pipeline::new(spfactor::matrix::gen::lap9(6, 6))
            .ordering(spfactor::Ordering::ApproximateMinimumDegree)
            .with_recorder(rec2.clone())
            .run();
        assert_eq!(rec2.counter("order.alg.amd"), 1);
        assert_eq!(rec2.counter("order.alg.mmd"), 0);
    }

    #[test]
    fn serve_layer_emits_its_documented_surface() {
        // The documented serve.* surface (docs/METRICS.md): cache
        // traffic counters mirror the cache's own stats, queue and
        // latency gauges are published, and builds/solves run under
        // their spans. The cache-miss build also lands the pipeline's
        // phase.* spans in the same recorder.
        use spfactor_serve::{ServeConfig, SolveRequest, SolverService, ValueBatch};

        let rec = Arc::new(Recorder::new());
        let service = SolverService::start(ServeConfig {
            cache_capacity: 2,
            queue_depth: 4,
            workers: 1,
            recorder: Some(rec.clone()),
            ..ServeConfig::default()
        });
        let pattern = spfactor::matrix::gen::lap9(8, 8);
        let values = spfactor::matrix::gen::spd_from_pattern(&pattern, 5);
        let rhs = vec![1.0; pattern.n()];
        let request = SolveRequest::new(pattern)
            .processors(4)
            .batch(ValueBatch::new(values).with_rhs(rhs));
        service.solve(request.clone()).unwrap();
        service.solve(request.clone()).unwrap();
        service.submit(request).unwrap().wait().unwrap();

        let stats = service.cache_stats();
        assert_eq!(rec.counter("serve.cache.hit"), stats.hits);
        assert_eq!(rec.counter("serve.cache.miss"), stats.misses);
        assert_eq!((stats.misses, stats.hits), (1, 2));
        assert_eq!(rec.counter("serve.requests"), 3);
        assert_eq!(rec.gauge_value("serve.queue.depth"), Some(0.0));
        for span in ["serve.build", "serve.solve", "phase.order", "phase.sched"] {
            assert!(
                rec.span_stats(span).is_some(),
                "span {span} missing; recorded: {:?}",
                rec.span_names()
            );
        }
        assert_eq!(rec.span_stats("serve.build").unwrap().count, 1);
        assert_eq!(rec.span_stats("serve.solve").unwrap().count, 3);
        for gauge in [
            "serve.latency.p50_ms",
            "serve.latency.p90_ms",
            "serve.latency.p99_ms",
        ] {
            assert!(
                rec.gauge_value(gauge).is_some(),
                "gauge {gauge} missing; recorded: {:?}",
                rec.gauge_names()
            );
        }
        // Eviction and rejection counters appear once triggered.
        let other = SolveRequest::new(spfactor::matrix::gen::lap9(5, 5)).processors(2);
        let third = SolveRequest::new(spfactor::matrix::gen::lap9(6, 6)).processors(2);
        service.solve(other).unwrap();
        service.solve(third).unwrap();
        assert_eq!(
            rec.counter("serve.cache.evict"),
            service.cache_stats().evictions
        );
        assert!(service.cache_stats().evictions > 0);
        assert_eq!(rec.gauge_value("serve.cache.size"), Some(2.0));
    }

    #[test]
    fn serve_resilience_emits_its_documented_surface() {
        // The resilience additions to the serve.* surface
        // (docs/METRICS.md): deadline counters with per-stage leaves,
        // failover retry/degradation counters, breaker state gauges and
        // transition counters, and the warm-restart store counters.
        use spfactor::mp::CrashPlan;
        use spfactor_serve::{
            ExecutionKernel, ResilienceConfig, ServeConfig, SolveRequest, SolverService, ValueBatch,
        };
        use std::time::Duration;

        let dir =
            std::env::temp_dir().join(format!("spfactor-metrics-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = Arc::new(Recorder::new());
        let service = SolverService::start(ServeConfig {
            recorder: Some(rec.clone()),
            store_dir: Some(dir.clone()),
            resilience: ResilienceConfig {
                max_retries: 1,
                backoff_base: Duration::from_micros(100),
                breaker_threshold: 1,
                breaker_cooldown: Duration::ZERO,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        });
        let pattern = spfactor::matrix::gen::lap9(5, 5);
        let values = spfactor::matrix::gen::spd_from_pattern(&pattern, 3);
        let crash = spfactor::FaultPlan {
            crash: Some(CrashPlan {
                proc: 0,
                after_units: 0,
                announce: true,
            }),
            ..spfactor::FaultPlan::none()
        };
        let request = SolveRequest::new(pattern)
            .processors(3)
            .kernel(ExecutionKernel::MessagePassing(
                spfactor::NetworkModel::default(),
            ))
            .batch(ValueBatch::new(values));

        // A zero deadline blows at the queue boundary, typed and counted.
        let _ = service.solve(request.clone().deadline(Duration::ZERO));
        assert_eq!(rec.counter("serve.deadline.exceeded"), 1);
        assert_eq!(rec.counter("serve.deadline.exceeded.queue"), 1);

        // A crashing mp request retries once, trips the breaker
        // (threshold 1), and degrades down the kernel chain.
        service.solve(request.clone().fault_plan(crash)).unwrap();
        assert_eq!(rec.counter("serve.failover.retry"), 1);
        assert_eq!(rec.counter("serve.failover.degraded"), 1);
        assert_eq!(rec.counter("serve.breaker.open"), 1);
        assert_eq!(rec.gauge_value("serve.breaker.mp.state"), Some(1.0));

        // Zero cooldown: the next healthy request is the half-open
        // probe; its success closes the breaker.
        service.solve(request.clone()).unwrap();
        assert_eq!(rec.counter("serve.breaker.probe"), 1);
        assert_eq!(rec.gauge_value("serve.breaker.mp.state"), Some(0.0));

        // The one cold build above was spilled to the store.
        assert_eq!(rec.counter("serve.store.spilled"), 1);

        // A restarted service over the same directory indexes the spill
        // and serves the pattern from disk.
        drop(service);
        let rec2 = Arc::new(Recorder::new());
        let service = SolverService::start(ServeConfig {
            recorder: Some(rec2.clone()),
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        service.solve(request).unwrap();
        assert_eq!(rec2.counter("serve.store.loaded"), 1);
        assert_eq!(rec2.counter("serve.store.hit"), 1);
        assert_eq!(rec2.counter("serve.store.rejected"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrap_scheme_records_its_own_branch() {
        let rec = Arc::new(Recorder::new());
        let result = Pipeline::new(spfactor::matrix::gen::lap9(10, 10))
            .scheme(Scheme::Wrap)
            .processors(8)
            .with_recorder(rec.clone())
            .run();
        assert_eq!(
            rec.counter("sched.alloc.wrap_columns"),
            result.partition.num_units() as u64
        );
        assert!(rec.span_stats("sched.wrap_allocation").is_some());
        assert!(rec.span_stats("partition.columns").is_some());
    }
}

#[cfg(not(feature = "trace"))]
mod disabled {
    use super::*;

    #[test]
    fn disabled_instrumentation_records_nothing() {
        let (_result, rec) = run_lap30_block();
        assert!(!rec.is_enabled());
        assert!(rec.counter_names().is_empty());
        assert!(rec.gauge_names().is_empty());
        assert!(rec.span_names().is_empty());
    }
}
