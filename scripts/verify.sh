#!/usr/bin/env bash
# Full verification for spfactor. Run from the repo root.
#
#   scripts/verify.sh
#
# Tier-1 (the gate every PR must keep green) plus the observability
# checks: the trace feature must compile out cleanly and the rustdoc
# surface must stay warning-free.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lints: cargo fmt --check"
cargo fmt --all --check

echo "==> lints: cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lints: no unwrap/expect in the fault-handling surfaces"
# The workspace clippy pass above enforces these because the sources carry
# deny(clippy::unwrap_used, clippy::expect_used) attributes; here we only
# assert the attributes have not been dropped. (Forcing the lints via
# command-line -D would also lint dependency crates, which legitimately
# unwrap in non-fault-handling code.)
grep -q "deny(clippy::unwrap_used, clippy::expect_used)" crates/mp/src/lib.rs \
  || { echo "crates/mp lost its unwrap/expect lint gate"; exit 1; }
grep -q "deny(clippy::unwrap_used, clippy::expect_used)" crates/matrix/src/lib.rs \
  || { echo "matrix::io lost its unwrap/expect lint gate"; exit 1; }
grep -q "deny(clippy::unwrap_used, clippy::expect_used)" crates/serve/src/lib.rs \
  || { echo "crates/serve lost its unwrap/expect lint gate"; exit 1; }

echo "==> mp cross-validation: executed runtime vs analytic simulator"
cargo test -q -p spfactor --test mp_cross_validation

echo "==> deps equivalence smoke: sweep engines vs element oracle"
cargo test -q -p spfactor --test deps_equivalence deps_engines_identical_on_all_paper_matrices

echo "==> chaos smoke: seeded fault injection cross-validates exactly"
cargo test -q -p spfactor --test chaos_mp chaos_smoke
cargo test -q -p spfactor-matrix --test io_robustness

echo "==> chaos-serve smoke: failover + warm-restart drill"
# Crash-failover must stay bit-identical and a restarted service must
# reload its artifact store with zero cold rebuilds; the artifact
# round-trip robustness suite backs the store's trust model.
cargo test -q -p spfactor --test chaos_serve chaos_serve_smoke
cargo test -q -p spfactor-sched --test artifact_robustness

echo "==> trace feature off: cargo test --no-default-features"
cargo test -q --workspace --no-default-features

echo "==> rustdoc (deny warnings): cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> metrics binary emits a JSON document"
# Capture to a file first: truncating the pipe directly would SIGPIPE
# the binary mid-print.
metrics_json="$(mktemp)"
cargo run --release -q -p spfactor-bench --bin metrics > "$metrics_json"
head -c 200 "$metrics_json"
echo
rm -f "$metrics_json"

echo "==> bench smoke run: schema of BENCH_pipeline.json"
bench_json="$(mktemp)"
scripts/bench.sh --smoke --out "$bench_json" > /dev/null
for field in '"schema": "spfactor-bench-pipeline/3"' \
             '"large_grid_speedup"' '"large_grid_deps_speedup"' \
             '"large_grid_order_speedup"' \
             '"matrices"' '"phases_ms"' \
             '"order_ms"' '"compressed"' \
             '"speedup_order_compressed_over_direct"' \
             '"deps_ms"' '"sweep_parallel"' \
             '"speedup_deps_sweep_parallel_over_element"' \
             '"order_alt"' '"amd_factor_entries"' \
             '"simulate_ms"' '"block_parallel"' \
             '"speedup_block_parallel_over_element"'; do
  grep -qF "$field" "$bench_json" \
    || { echo "bench JSON missing $field"; exit 1; }
done
rm -f "$bench_json"

echo "==> scale smoke: schema of BENCH_scale.json, peak-bytes gauges populated"
# The smoke run itself asserts every phase.*.peak_bytes gauge is
# populated (the binary panics otherwise), so passing here witnesses
# the tracking-allocator plumbing end to end.
scale_json="$(mktemp)"
scripts/bench.sh --scale --smoke --out "$scale_json" > /dev/null
for field in '"schema": "spfactor-bench-scale/1"' \
             '"order_engine": "compressed"' \
             '"max_n"' '"max_peak_bytes"' \
             '"sizes"' '"phases_ms"' '"peak_bytes"' \
             '"factor_entries"' '"total_ms"'; do
  grep -qF "$field" "$scale_json" \
    || { echo "scale bench JSON missing $field"; exit 1; }
done
rm -f "$scale_json"
# The committed scale baseline must self-compare clean through the gate.
cargo run --release -q -p spfactor-bench --bin bench_regression -- \
  --baseline BENCH_scale.json --new BENCH_scale.json > /dev/null \
  || { echo "bench_regression failed a scale self-compare"; exit 1; }

echo "==> serve smoke: schedule cache + bench_serve schema of BENCH_serve.json"
# The serve integration suite is the cache's executable contract
# (single-flight, LRU order, bit-identical cached solves, Overloaded).
cargo test -q -p spfactor --test serve_cache
serve_json="$(mktemp)"
scripts/bench.sh --serve --smoke --out "$serve_json" > /dev/null
for field in '"schema": "spfactor-bench-serve/2"' \
             '"amortized_speedup"' '"amortized_hit_rate"' \
             '"cold_ms"' '"amortized_ms"' \
             '"throughput_rps"' '"hit_rate"' \
             '"p50_ms"' '"p99_ms"' '"rejected"' \
             '"schemes"' '"cache_sweep"' '"capacity"' \
             '"fault_sweep"' '"degraded_fraction"'; do
  grep -qF "$field" "$serve_json" \
    || { echo "serve bench JSON missing $field"; exit 1; }
done
rm -f "$serve_json"
# The committed serve baseline must self-compare clean through the gate.
cargo run --release -q -p spfactor-bench --bin bench_regression -- \
  --baseline BENCH_serve.json --new BENCH_serve.json > /dev/null \
  || { echo "bench_regression failed a serve self-compare"; exit 1; }

echo "==> timeline smoke: LAP30 traces export, validate, and reconcile"
# The timeline binary self-checks every export: the virtual-clock
# timeline must reconcile exactly against the timed report and each
# trace must pass the Chrome-trace validator before it is written.
timeline_dir="$(mktemp -d)"
cargo run --release -q -p spfactor-bench --bin timeline -- \
  --out-dir "$timeline_dir" --nprocs 8 > /dev/null
for f in lap30_block_sim lap30_block_mp lap30_wrap_sim lap30_wrap_mp; do
  [ -s "$timeline_dir/$f.json" ] \
    || { echo "timeline smoke did not write $f.json"; exit 1; }
done
rm -rf "$timeline_dir"

echo "==> bench regression gate: self-diff passes, report-only never fails"
# Identical documents must compare clean; a smoke run diffed against the
# full baseline exercises the missing-leaf path without failing verify.
cargo run --release -q -p spfactor-bench --bin bench_regression -- \
  --baseline BENCH_pipeline.json --new BENCH_pipeline.json > /dev/null \
  || { echo "bench_regression failed a self-compare"; exit 1; }
regress_json="$(mktemp)"
scripts/bench.sh --smoke --out "$regress_json" > /dev/null
cargo run --release -q -p spfactor-bench --bin bench_regression -- \
  --baseline BENCH_pipeline.json --new "$regress_json" --report-only \
  | tail -n 2
rm -f "$regress_json"

echo "==> docs: every docs/*.md is linked from README.md"
for doc in docs/*.md; do
  grep -qF "$doc" README.md \
    || { echo "README.md does not link $doc"; exit 1; }
done

echo "OK: all verification steps passed"
