#!/usr/bin/env bash
# Regenerates the tracked benchmark baseline (BENCH_pipeline.json).
# Run from anywhere; all arguments pass through to the bench binary:
#
#   scripts/bench.sh                 # full run, rewrites BENCH_pipeline.json
#   scripts/bench.sh --smoke         # tiny grid, schema validation only
#   scripts/bench.sh --out /tmp/b.json
#   scripts/bench.sh --side 300 --grain 50 --out /tmp/b.json
#
# See docs/PERFORMANCE.md for how to read the output.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run --release -q -p spfactor-bench --bin bench_pipeline -- "$@"
