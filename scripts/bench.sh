#!/usr/bin/env bash
# Regenerates or gates the tracked benchmark baselines
# (BENCH_pipeline.json, BENCH_serve.json, BENCH_scale.json). Run from
# anywhere. Without a mode flag, all arguments pass through to the
# pipeline bench binary:
#
#   scripts/bench.sh                 # full run, rewrites BENCH_pipeline.json
#   scripts/bench.sh --smoke         # tiny grid, schema validation only
#   scripts/bench.sh --out /tmp/b.json
#   scripts/bench.sh --side 300 --grain 50 --out /tmp/b.json
#
# Serve modes drive the solver-service benchmark instead
# (docs/SERVING.md); remaining arguments pass through to bench_serve:
#
#   scripts/bench.sh --serve             # full run, rewrites BENCH_serve.json
#   scripts/bench.sh --serve --smoke     # tiny trace, schema validation only
#
# Scale modes drive the million-column sweep instead (bench_scale,
# docs/PERFORMANCE.md); remaining arguments pass through:
#
#   scripts/bench.sh --scale             # full sweep, rewrites BENCH_scale.json
#   scripts/bench.sh --scale --smoke     # one tiny grid, schema validation only
#
# Gate modes run a fresh full benchmark into a temp file and diff every
# time-like leaf against the committed baseline with bench_regression,
# failing on >15% slowdowns or missing leaves:
#
#   scripts/bench.sh --gate                # pipeline baseline, exit 1 on regression
#   scripts/bench.sh --gate-report         # same diff, never fails the build
#   scripts/bench.sh --gate-serve          # serve baseline, exit 1 on regression
#   scripts/bench.sh --gate-serve-report   # same diff, never fails the build
#   scripts/bench.sh --gate-scale          # scale baseline, exit 1 on regression
#   scripts/bench.sh --gate-scale-report   # same diff, never fails the build
#
# Remaining arguments after a gate flag pass through to the fresh bench
# run (e.g. `scripts/bench.sh --gate --smoke` for a quick machinery
# check — expect missing leaves against the full baseline).
# See docs/PERFORMANCE.md for how to read the output and
# docs/OBSERVABILITY.md for the regression-gate workflow.
set -euo pipefail
cd "$(dirname "$0")/.."

# gate <bin> <baseline> <report-only?> [passthrough args...]
gate() {
  local bin="$1" baseline="$2" report_only="$3"
  shift 3
  local fresh
  fresh="$(mktemp)"
  trap 'rm -f "$fresh"' EXIT
  echo "==> fresh $bin run (baseline untouched)"
  cargo run --release -q -p spfactor-bench --bin "$bin" -- --out "$fresh" "$@"
  echo "==> diff against $baseline"
  if [ "$report_only" = "yes" ]; then
    cargo run --release -q -p spfactor-bench --bin bench_regression -- \
      --baseline "$baseline" --new "$fresh" --report-only
  else
    cargo run --release -q -p spfactor-bench --bin bench_regression -- \
      --baseline "$baseline" --new "$fresh"
  fi
}

case "${1:-}" in
  --gate)              shift; gate bench_pipeline BENCH_pipeline.json no  "$@" ;;
  --gate-report)       shift; gate bench_pipeline BENCH_pipeline.json yes "$@" ;;
  --gate-serve)        shift; gate bench_serve    BENCH_serve.json    no  "$@" ;;
  --gate-serve-report) shift; gate bench_serve    BENCH_serve.json    yes "$@" ;;
  --gate-scale)        shift; gate bench_scale    BENCH_scale.json    no  "$@" ;;
  --gate-scale-report) shift; gate bench_scale    BENCH_scale.json    yes "$@" ;;
  --serve)
    shift
    exec cargo run --release -q -p spfactor-bench --bin bench_serve -- "$@"
    ;;
  --scale)
    shift
    exec cargo run --release -q -p spfactor-bench --bin bench_scale -- "$@"
    ;;
  *)
    exec cargo run --release -q -p spfactor-bench --bin bench_pipeline -- "$@"
    ;;
esac
