#!/usr/bin/env bash
# Regenerates or gates the tracked benchmark baseline (BENCH_pipeline.json).
# Run from anywhere. Without a mode flag, all arguments pass through to
# the bench binary:
#
#   scripts/bench.sh                 # full run, rewrites BENCH_pipeline.json
#   scripts/bench.sh --smoke         # tiny grid, schema validation only
#   scripts/bench.sh --out /tmp/b.json
#   scripts/bench.sh --side 300 --grain 50 --out /tmp/b.json
#
# Gate modes run a fresh full benchmark into a temp file and diff every
# time-like leaf against the committed baseline with bench_regression,
# failing on >15% slowdowns or missing leaves:
#
#   scripts/bench.sh --gate          # exit 1 on regression
#   scripts/bench.sh --gate-report   # same diff, never fails the build
#
# Remaining arguments after --gate/--gate-report pass through to the
# fresh bench run (e.g. `scripts/bench.sh --gate --smoke` for a quick
# machinery check — expect missing leaves against the full baseline).
# See docs/PERFORMANCE.md for how to read the output and
# docs/OBSERVABILITY.md for the regression-gate workflow.
set -euo pipefail
cd "$(dirname "$0")/.."

case "${1:-}" in
  --gate|--gate-report)
    mode="$1"
    shift
    fresh="$(mktemp)"
    trap 'rm -f "$fresh"' EXIT
    echo "==> fresh benchmark run (baseline untouched)"
    cargo run --release -q -p spfactor-bench --bin bench_pipeline -- --out "$fresh" "$@"
    echo "==> diff against BENCH_pipeline.json"
    if [ "$mode" = "--gate-report" ]; then
      cargo run --release -q -p spfactor-bench --bin bench_regression -- \
        --baseline BENCH_pipeline.json --new "$fresh" --report-only
    else
      cargo run --release -q -p spfactor-bench --bin bench_regression -- \
        --baseline BENCH_pipeline.json --new "$fresh"
    fi
    ;;
  *)
    exec cargo run --release -q -p spfactor-bench --bin bench_pipeline -- "$@"
    ;;
esac
