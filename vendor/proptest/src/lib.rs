//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch the real proptest, so this crate
//! provides the subset of its 1.x API the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map`, range and [`any`] strategies, tuple
//! composition, [`collection::vec`] / [`collection::btree_set`], and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (reproducible across runs), and failing cases are
//! reported **without shrinking**.

use std::fmt;

/// Deterministic xorshift-style generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for deterministic test-case generation; `salt` keeps
    /// different tests on different streams.
    pub fn new(salt: u64) -> Self {
        TestRng {
            state: 0x9E3779B97F4A7C15 ^ salt.wrapping_mul(0xD1342543DE82EF95) | 1,
        }
    }

    /// Next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Error type carried by `prop_assert!` failures through a test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Value-generation strategy (no shrinking in this stand-in).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, as proptest's `prop_map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Strategy for the full value domain of `T`; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — uniform over `T`'s full domain (as in proptest).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u64, u32, u16, u8, usize, i64, i32);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite floats only: keeps downstream arithmetic meaningful.
        f64::from_bits(rng.next_u64() >> 2)
    }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);
impl_tuple_strategy!(A B C D E F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, size_range)` — as in proptest.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                0
            } else {
                rng.below(self.size.start, self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a *target* size drawn from
    /// `size` (duplicates collapse, as in proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `btree_set(element, size_range)` — as in proptest.
    pub fn btree_set<S: Strategy>(
        element: S,
        size: core::ops::Range<usize>,
    ) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                0
            } else {
                rng.below(self.size.start, self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many random cases each property test runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                // Per-test deterministic stream, salted by the test name.
                let salt = stringify!($name)
                    .bytes()
                    .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
                let mut rng = $crate::TestRng::new(salt);
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = {
                        $(
                            let $arg = $crate::Strategy::generate(&$strat, &mut rng);
                        )*
                        #[allow(clippy::redundant_closure_call)]
                        (|| { $body Ok(()) })()
                    };
                    if let Err(e) = result {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 3usize..17,
            x in 0.5f64..2.5,
            seed in any::<u64>(),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.5..2.5).contains(&x));
            let _ = seed;
        }

        #[test]
        fn map_and_collections_compose(
            v in proptest::collection::vec((0usize..50, 0usize..8), 0..25),
            s in proptest::collection::btree_set(0usize..64, 0..40),
            doubled in (1usize..10).prop_map(|k| k * 2),
        ) {
            prop_assert!(v.len() < 25);
            prop_assert!(v.iter().all(|&(a, b)| a < 50 && b < 8));
            prop_assert!(s.len() < 40);
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(k in 0usize..5) {
            prop_assert!(k < 5);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(k in 0usize..5) {
                    prop_assert!(k > 100, "k was {}", k);
                }
            }
            always_fails();
        });
        assert!(r.is_err());
    }
}
