//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be fetched. This crate implements the small
//! subset of the rand 0.8 API the workspace uses — [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`] — on top of a deterministic
//! xoshiro256\*\* generator. Distribution quality is more than adequate
//! for the test-matrix generators and shuffles it backs; it is **not** a
//! cryptographic or research-grade source of randomness.

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`f64` in `[0, 1)`, full range integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_uniform(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u64, u32, u16, u8, usize, i64, i32);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* — the small fast generator behind both `SmallRng`
    /// and `StdRng` in this stand-in.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as rand does for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    /// Alias of [`SmallRng`]; the stand-in makes no security claims.
    pub type StdRng = SmallRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices (the only `SliceRandom` method used here).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
            assert!((3..9).contains(&a.gen_range(3usize..9)));
            assert!((0.1..=1.0).contains(&a.gen_range(0.1f64..=1.0)));
            b.gen_range(3usize..9);
            b.gen_range(0.1f64..=1.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(7));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
