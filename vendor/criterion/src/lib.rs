//! Offline stand-in for the `criterion` crate.
//!
//! Covers the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark
//! `sample_size` times and prints the mean, min and max wall-clock time
//! per iteration. Good enough for relative comparisons in this repo; not
//! a replacement for real criterion's outlier analysis.

use std::fmt;
use std::time::Instant;

/// Identifier for one benchmark within a group (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter label.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: u64,
    /// Mean/min/max nanoseconds per closure call, filled in by [`iter`].
    ///
    /// [`iter`]: Bencher::iter
    results_ns: (f64, f64, f64),
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, running it a warmup pass plus `samples` measured
    /// passes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: aim for samples that take >= ~1ms so the
        // timer resolution does not dominate very fast routines.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as u64;
        let iters = (1_000_000 / once).clamp(1, 1_000);
        self.iters_per_sample = iters;

        let (mut total, mut lo, mut hi) = (0f64, f64::INFINITY, 0f64);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            total += per_iter;
            lo = lo.min(per_iter);
            hi = hi.max(per_iter);
        }
        self.results_ns = (total / self.samples as f64, lo, hi);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, ID: fmt::Display, F>(
        &mut self,
        id: ID,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            results_ns: (0.0, 0.0, 0.0),
            iters_per_sample: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs a benchmark with no input parameter.
    pub fn bench_function<ID: fmt::Display, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            results_ns: (0.0, 0.0, 0.0),
            iters_per_sample: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let (mean, lo, hi) = b.results_ns;
        println!(
            "{}/{:<40} mean {:>12}  min {:>12}  max {:>12}  ({} samples x {} iters)",
            self.name,
            id,
            fmt_ns(mean),
            fmt_ns(lo),
            fmt_ns(hi),
            self.samples,
            b.iters_per_sample,
        );
    }

    /// Ends the group (prints a blank separator line).
    pub fn finish(&mut self) {
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group<N: fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions under one name, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let input = vec![1u64, 2, 3, 4];
        group.bench_with_input(BenchmarkId::new("sum", "small"), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    fn bench_a(c: &mut Criterion) {
        c.benchmark_group("a")
            .sample_size(2)
            .bench_function("x", |b| b.iter(|| ()));
    }

    criterion_group!(benches, bench_a);

    #[test]
    fn macros_expand_and_run() {
        benches();
    }
}
