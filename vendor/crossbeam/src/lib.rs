//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the two pieces this workspace uses — [`scope`] (scoped
//! threads, here delegating to `std::thread::scope`) and
//! [`channel::unbounded`] (an MPMC channel built on `Mutex` + `Condvar`)
//! — with the same call-site API as crossbeam 0.8. Throughput is lower
//! than real crossbeam's lock-free channels, which is irrelevant for the
//! correctness-oriented parallel executors built on top.

use std::any::Any;

/// Result of a [`scope`] call: `Err` carries the payload of the first
/// panicking worker, as with crossbeam.
pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// Scope handle passed to the [`scope`] closure; spawn worker threads
/// through it.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives a placeholder unit
    /// argument where crossbeam passes a nested `&Scope` (no caller in
    /// this workspace uses it).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a [`Scope`] whose spawned threads are all joined before
/// `scope` returns. Worker panics surface as `Err`, matching crossbeam.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// MPMC channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; cloning adds another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloning adds another consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (Never produced here: senders do not track receiver liveness, as
    /// no caller in this workspace relies on it.)
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`], mirroring crossbeam's
    /// two-variant enum: the deadline passed, or the channel disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message and wakes one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake everyone so they observe EOF.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or errors once the channel is
        /// empty and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .expect("channel poisoned");
            }
        }

        /// Blocks until a message arrives or `timeout` elapses, whichever
        /// comes first, with the same disconnect semantics as
        /// [`Receiver::recv`].
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel poisoned");
                queue = guard;
            }
        }

        /// Non-blocking receive: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn channel_delivers_across_scoped_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        let total: usize = super::scope(|s| {
            for k in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..100 {
                        tx.send(k * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut sum = 0usize;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        })
        .unwrap();
        assert_eq!(total, (0..400).sum());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn worker_panic_is_reported() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
